"""FleetSweep: multi-host work-stealing sweeps, determinism-first.

The invariant (``docs/parallel.md``, "Multi-host fleets"): a fleet of
N workers pulling leased tasks from a shared directory, merged by the
coordinator in task-index order, produces a deterministic comparison
table — and merged trace-store bundles — bitwise-identical to
``run_sweep(tasks, jobs=1)`` on one host.  Tested here at three
granularities:

* lease-protocol units: fresh claims, held-lease refusal, the
  expired-lease double-claim race (exactly one winner, the loser
  re-queues), clock-skewed heartbeats with benign duplicate execution,
  quarantined host-WAL tails;
* coordinator behaviour: zero-worker completion, idempotent re-merge,
  crash-mid-merge recovery against injected fs faults;
* the seeded schedule property: 50 random (worker-count, ghost-lease,
  interleaving, crash-point) schedules, each bitwise-equal to the
  inline run — a fast subset on every PR, the full sweep nightly
  (``-m slow``); the subprocess version lives in
  ``scripts/fleet_smoke.py`` and ``scripts/chaos_sweep.py``.
"""

import hashlib
import json
import random
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigError, SamplingError
from repro.harness.tables import comparison_table
from repro.parallel import (
    FleetWorker,
    fleet_coordinate,
    fleet_init,
    fleet_worker,
    load_manifest,
    plan_sweep,
    run_sweep,
)
from repro.parallel.fleet import (
    MANIFEST_NAME,
    read_done,
    read_lease,
    write_lease,
)
from repro.parallel.journal import JOURNAL_NAME
from repro.parallel.tasks import run_task
from repro.reliability import FsFaultPlan, FsFaultSpec, scoped_fs_faults
from repro.tracestore import TraceStore

SIZES = (64,)


def _plan(workloads=("fir",), **kwargs):
    return plan_sweep(list(workloads), sizes=SIZES, methods=("photon",),
                      seed=7, **kwargs)


def _det(result):
    return comparison_table(result.rows, deterministic=True)


def _store_digest(root):
    return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(Path(root).glob("*.trc"))}


# ------------------------------------------------------------- manifest


def test_fleet_init_writes_loadable_manifest(tmp_path):
    tasks = _plan(("fir", "relu"))
    fleet_init(tmp_path / "fleet", tasks)
    loaded, options = load_manifest(tmp_path / "fleet")
    assert [t.to_dict() for t in loaded] == [t.to_dict() for t in tasks]
    assert options == {}


def test_fleet_init_refuses_reuse(tmp_path):
    fleet_init(tmp_path / "fleet", _plan())
    with pytest.raises(ConfigError, match="already exists"):
        fleet_init(tmp_path / "fleet", _plan())


def test_fleet_init_refuses_empty_plan(tmp_path):
    with pytest.raises(ConfigError, match="empty"):
        fleet_init(tmp_path / "fleet", [])


def test_load_manifest_missing_and_corrupt(tmp_path):
    with pytest.raises(SamplingError, match="no fleet manifest"):
        load_manifest(tmp_path / "nowhere")
    fleet_init(tmp_path / "fleet", _plan())
    manifest = tmp_path / "fleet" / MANIFEST_NAME
    manifest.write_bytes(manifest.read_bytes()[:-20] + b"xxxxx")
    with pytest.raises(SamplingError):
        load_manifest(tmp_path / "fleet")


# ------------------------------------------------------- lease protocol


def _worker(fleet, host, **kwargs):
    kwargs.setdefault("heartbeat", False)
    return FleetWorker(fleet, host=host, **kwargs)


def test_fresh_claim_runs_and_marks_done(tmp_path):
    fleet = fleet_init(tmp_path / "fleet", _plan())
    w = _worker(fleet, "alpha")
    claim = w.try_claim(0)
    assert claim is not None and not claim.stolen
    assert claim.generation == 0
    outcome = w.run_claimed(claim)
    assert outcome.ok and outcome.host == "alpha"
    assert read_done(fleet, 0)["host"] == "alpha"
    # a completed task is never claimable again, by anyone
    assert _worker(fleet, "beta")._claimable(0) is None
    w.close()


def test_live_foreign_lease_is_refused(tmp_path):
    fleet = fleet_init(tmp_path / "fleet", _plan())
    w = _worker(fleet, "alpha", clock=lambda: 100.0)
    write_lease(fleet, 0, "other", deadline=1000.0)
    assert w.try_claim(0) is None
    assert w.report.lost_races == 0  # refusal, not a lost race
    assert w.step() == "ran"  # skips task 0, runs the next free task
    assert 0 not in w._completed
    assert w.step() == "idle"  # only the held task remains
    w.close()


def test_expired_lease_is_stolen_at_next_generation(tmp_path):
    fleet = fleet_init(tmp_path / "fleet", _plan())
    write_lease(fleet, 0, "ghost", deadline=50.0, generation=3)
    w = _worker(fleet, "alpha", clock=lambda: 100.0)
    claim = w.try_claim(0)
    assert claim is not None and claim.stolen
    assert claim.generation == 4
    w.run_claimed(claim)
    assert w.report.stolen == 1
    assert read_done(fleet, 0)["stolen"] is True
    w.close()


def test_expired_double_claim_race_has_exactly_one_winner(tmp_path):
    """Two hosts race for the same expired lease; os.replace decides."""
    fleet = fleet_init(tmp_path / "fleet", _plan())
    write_lease(fleet, 0, "ghost", deadline=1.0)
    a = _worker(fleet, "alpha", clock=lambda: 100.0)
    b = _worker(fleet, "beta", clock=lambda: 100.0)
    # interleave the claim protocol by hand: both see the expired
    # lease, both write a claim, b's atomic replace lands last
    assert a._claimable(0) == (1, True)
    assert b._claimable(0) == (1, True)
    nonce_a = a._write_claim(0, 1)
    nonce_b = b._write_claim(0, 1)
    wins = [a._verify_claim(0, nonce_a), b._verify_claim(0, nonce_b)]
    assert wins == [False, True]  # exactly one complete claim survives
    assert read_lease(fleet, 0)["owner"] == "beta"
    a.close(), b.close()


def test_lost_race_requeues_and_is_counted(tmp_path):
    fleet = fleet_init(tmp_path / "fleet", _plan(("fir", "relu")))
    a = _worker(fleet, "alpha", clock=lambda: 100.0)
    b = _worker(fleet, "beta", clock=lambda: 100.0)
    original = a._write_claim

    def raced(index, generation):
        nonce = original(index, generation)
        b._write_claim(index, generation)  # beta lands after alpha
        return nonce

    a._write_claim = raced
    assert a.try_claim(0) is None
    assert a.report.lost_races == 1
    a._write_claim = original
    # the loser re-queues: task 0 is now validly leased by beta, so
    # alpha's next step skips it and claims the next free task instead
    assert a.step() == "ran"
    assert 0 not in a._completed and a.report.ran == 1
    a.close(), b.close()


def test_clock_skew_duplicate_execution_is_golden(tmp_path):
    """A fast-clocked host steals a live task; both run it; still golden.

    Host ``beta``'s clock is hours ahead, so alpha's perfectly healthy
    lease looks expired and beta steals it.  Alpha, unaware, finishes
    its run too.  Duplicate execution is benign by construction:
    deterministic tasks, per-host journals, order-independent
    first-write-wins merges.
    """
    golden_store = tmp_path / "golden-store"
    golden = run_sweep(_plan(("fir", "relu"),
                             trace_store=str(golden_store)))
    store = tmp_path / "store"
    fleet = fleet_init(tmp_path / "fleet",
                       _plan(("fir", "relu"), trace_store=str(store)))
    a = _worker(fleet, "alpha", clock=lambda: 100.0, lease_seconds=60.0)
    b = _worker(fleet, "beta", clock=lambda: 90000.0)
    claim_a = a.try_claim(0)
    assert claim_a is not None and not claim_a.stolen
    claim_b = b.try_claim(0)  # alpha's deadline=160 < beta's clock
    assert claim_b is not None and claim_b.stolen
    a.run_claimed(claim_a)  # alpha doesn't know it was robbed
    b.run_claimed(claim_b)
    while b.step() == "ran":  # beta mops up the rest of the plan
        pass
    assert b.report.stolen == 1
    a.close(), b.close()
    result = fleet_coordinate(fleet, grace=0.05)
    assert _det(result) == _det(golden)
    assert _store_digest(store) == _store_digest(golden_store)
    # both hosts executed task 0; the merge keeps exactly one outcome
    # per task (sorted-host tie-break) and one staged copy per bundle
    assert len(result.outcomes) == len(golden.outcomes)
    assert result.report.hosts == 2


def test_heartbeat_extends_deadline_and_keeps_nonce(tmp_path):
    import threading
    import time

    fleet = fleet_init(tmp_path / "fleet", _plan())
    w = FleetWorker(fleet, host="alpha", lease_seconds=0.2,
                    heartbeat=True)
    claim = w.try_claim(0)
    first = read_lease(fleet, 0)
    stop = threading.Event()
    beat = threading.Thread(target=w._heartbeat_loop,
                            args=(claim, stop, 0.01), daemon=True)
    beat.start()
    deadline = time.monotonic() + 5.0
    try:
        while time.monotonic() < deadline:
            lease = read_lease(fleet, 0)
            if lease["deadline"] > first["deadline"]:
                break
            time.sleep(0.01)
    finally:
        stop.set()
        beat.join()
    lease = read_lease(fleet, 0)
    assert lease["deadline"] > first["deadline"]  # refreshed
    assert lease["nonce"] == first["nonce"]       # same claim
    assert lease["generation"] == first["generation"]
    w.close()


def test_heartbeat_abandons_a_stolen_lease(tmp_path):
    fleet = fleet_init(tmp_path / "fleet", _plan())
    w = FleetWorker(fleet, host="alpha", lease_seconds=0.2,
                    heartbeat=True)
    claim = w.try_claim(0)
    stolen_nonce = write_lease(fleet, 0, "thief", deadline=1e12,
                               generation=claim.generation + 1)
    import threading
    stop = threading.Event()
    beat = threading.Thread(target=w._heartbeat_loop,
                            args=(claim, stop, 0.01), daemon=True)
    beat.start()
    beat.join(timeout=5.0)  # exits on its own: the nonce changed
    assert not beat.is_alive()
    assert read_lease(fleet, 0)["nonce"] == stolen_nonce
    w.close()


def test_own_stale_lease_reclaimed_not_stolen(tmp_path):
    """A restarted host takes its own expired lease back as a reclaim."""
    fleet = fleet_init(tmp_path / "fleet", _plan())
    write_lease(fleet, 0, "alpha", deadline=50.0, generation=2)
    w = _worker(fleet, "alpha", clock=lambda: 100.0)
    assert w._claimable(0) == (3, False)
    # even while the lease is nominally alive: it is *ours*
    write_lease(fleet, 0, "alpha", deadline=1000.0, generation=2)
    assert w._claimable(0) == (3, False)
    w.close()


def test_unreadable_lease_never_blocks_the_fleet(tmp_path):
    fleet = fleet_init(tmp_path / "fleet", _plan())
    lease_path = fleet / "leases" / "task-00000000" / "lease.json"
    w = _worker(fleet, "alpha")
    # garbage bytes read back as "no lease": a fresh gen-0 claim
    write_lease(fleet, 0, "ghost", deadline=1e12)
    lease_path.write_bytes(b"\x00 not json \xff")
    assert w._claimable(0) == (0, False)
    # a well-formed record with mangled fields is stolen outright
    lease_path.write_text(json.dumps({"owner": "ghost",
                                      "deadline": "whenever"}))
    assert w._claimable(0) == (1, True)
    w.close()


def test_worker_validates_lease_seconds_and_host(tmp_path):
    fleet = fleet_init(tmp_path / "fleet", _plan())
    with pytest.raises(ConfigError, match="lease_seconds"):
        FleetWorker(fleet, host="alpha", lease_seconds=-1.0)
    with pytest.raises(ConfigError, match="host"):
        FleetWorker(fleet, host="..")


def test_idle_worker_times_out_with_max_wait(tmp_path):
    fleet = fleet_init(tmp_path / "fleet", _plan())
    write_lease(fleet, 0, "other", deadline=1e12)  # held forever
    w = FleetWorker(fleet, host="alpha", heartbeat=False,
                    poll_interval=0.01, max_wait=0.05)
    with pytest.raises(SamplingError, match="idle"):
        w.run()


# ------------------------------------------------------ host WAL resume


def test_quarantined_host_journal_tail_recovers(tmp_path):
    """Torn WAL tail: the restarted host quarantines it and continues."""
    golden = run_sweep(_plan(("fir", "relu")))
    fleet = fleet_init(tmp_path / "fleet", _plan(("fir", "relu")))
    w = _worker(fleet, "alpha")
    assert w.step() == "ran"
    w.close()
    journal = fleet / "hosts" / "alpha" / JOURNAL_NAME
    with journal.open("ab") as handle:
        handle.write(b'{"torn mid-append')  # host died writing this
    restarted = _worker(fleet, "alpha")
    assert 0 in restarted._completed  # valid prefix replayed
    restarted.run()
    result = fleet_coordinate(fleet, grace=0.05)
    assert _det(result) == _det(golden)
    # the quarantined line is skipped, not fatal, and the merge is
    # still complete: every task has exactly one outcome row
    assert len(result.outcomes) == len(golden.outcomes)


# --------------------------------------------------------- coordinator


def test_coordinator_only_fleet_completes(tmp_path):
    """Zero workers: the coordinator self-runs the whole plan."""
    golden = run_sweep(_plan(("fir", "relu")))
    fleet = fleet_init(tmp_path / "fleet", _plan(("fir", "relu")))
    result = fleet_coordinate(fleet, grace=0.05)
    assert _det(result) == _det(golden)
    assert result.report.mp_context == "fleet"
    assert result.report.hosts == 1  # the coordinator itself
    assert result.replayed == 0      # nothing pre-existed


def test_coordinate_is_idempotent(tmp_path):
    fleet = fleet_init(tmp_path / "fleet", _plan())
    first = fleet_coordinate(fleet, grace=0.05)
    again = fleet_coordinate(fleet, grace=0.05)
    assert _det(again) == _det(first)
    assert again.replayed == len(first.outcomes)  # pure journal replay


def test_coordinator_crash_mid_merge_then_recoordinate(tmp_path):
    """Kill the merge with an injected fs fault; re-coordinate; golden."""
    golden_store = tmp_path / "golden-store"
    golden = run_sweep(_plan(("fir", "relu"),
                             trace_store=str(golden_store)))
    store = tmp_path / "store"
    fleet = fleet_init(tmp_path / "fleet",
                       _plan(("fir", "relu"), trace_store=str(store)))
    fleet_worker(fleet, host="w0")  # a worker covers the whole plan
    plan = FsFaultPlan(FsFaultSpec(site="tracestore.bundle",
                                   mode="torn", at=1))
    with pytest.raises(Exception):
        with scoped_fs_faults(plan):
            fleet_coordinate(fleet, grace=0.05)
    result = fleet_coordinate(fleet, grace=0.05)
    assert _det(result) == _det(golden)
    assert _store_digest(store) == _store_digest(golden_store)


def test_fleet_report_telemetry_and_summary(tmp_path):
    fleet = fleet_init(tmp_path / "fleet", _plan(("fir", "relu")))
    write_lease(fleet, 0, "ghost", deadline=1.0)  # force one steal
    fleet_worker(fleet, host="w1")
    result = fleet_coordinate(fleet, grace=0.05)
    report = result.report
    assert report.steals == 1
    rows = report.host_rows()
    assert [r["host"] for r in rows] == sorted(r["host"] for r in rows)
    assert sum(r["tasks"] for r in rows) == len(result.outcomes)
    assert sum(r["stolen"] for r in rows) == 1
    assert "fleet:" in report.summary()
    payload = json.dumps(report.to_dict())  # JSON-safe end to end
    assert '"steals": 1' in payload


# ------------------------------------------- multi-root staging merges


def test_merge_staged_multi_root_first_write_wins(tmp_path):
    """Two hosts staged the same tasks; the merge folds one copy."""
    golden_store = tmp_path / "golden-store"
    run_sweep(_plan(trace_store=str(golden_store)))
    root = tmp_path / "store"
    tasks = _plan(trace_store=str(root))
    stage_a = tmp_path / "staging" / "host-a"
    stage_b = tmp_path / "staging" / "host-b"
    for task in tasks:
        run_task(task, stage_dir=str(stage_a / f"task-{task.index:08d}"))
        run_task(task, stage_dir=str(stage_b / f"task-{task.index:08d}"))
    stats = TraceStore(root).merge_staged(
        staging_roots=[stage_a, stage_b])
    assert stats["quarantined"] == 0
    assert _store_digest(root) == _store_digest(golden_store)


# ------------------------------------- seeded schedule property (50x)


def _seeded_fleet_schedule(tmp_path, seed):
    """One random (workers, ghosts, interleaving, crash-point) schedule.

    Everything is driven in-process with injected clocks and explicit
    ``step()`` calls, so a failing seed replays exactly.  A "crash" is
    a worker that claims a task and never runs it; advancing the
    simulated clock past its lease deadline hands the task to a
    survivor as a steal.
    """
    rng = random.Random(seed)
    golden_store = tmp_path / "golden-store"
    golden = run_sweep(_plan(("fir", "relu"),
                             trace_store=str(golden_store)))
    store = tmp_path / "store"
    fleet = fleet_init(tmp_path / "fleet",
                       _plan(("fir", "relu"), trace_store=str(store)))
    n_tasks = len(load_manifest(fleet)[0])
    clock = [100.0]
    for index in range(n_tasks):  # dead hosts left expired leases
        if rng.random() < 0.3:
            write_lease(fleet, index, "ghost", deadline=clock[0] - 1.0)
    n_workers = rng.randint(2, 4)
    workers = [
        FleetWorker(fleet, host=f"w{i}", heartbeat=False,
                    lease_seconds=rng.uniform(5.0, 30.0),
                    clock=lambda: clock[0])
        for i in range(n_workers)
    ]
    crash_step = (rng.randrange(1, 2 * n_tasks)
                  if rng.random() < 0.6 else None)
    alive = list(workers)
    steps = 0
    while True:
        steps += 1
        clock[0] += rng.uniform(0.0, 2.0)
        if crash_step is not None and steps == crash_step \
                and len(alive) > 1:
            victim = alive.pop(rng.randrange(len(alive)))
            for task in victim.tasks:  # claim one task, never run it
                if read_done(fleet, task.index) is None \
                        and victim.try_claim(task.index) is not None:
                    break
            victim.close()
            clock[0] += victim.lease_seconds + 1.0  # lease expires
            continue
        status = rng.choice(alive).step()
        if status == "done":
            break
        if status == "idle":
            clock[0] += 5.0  # let held leases expire instead of spinning
        assert steps < 200, "schedule failed to converge"
    for worker in workers:
        worker.close()
    result = fleet_coordinate(fleet, grace=0.05,
                              clock=lambda: clock[0])
    assert _det(result) == _det(golden), f"seed {seed} diverged"
    assert _store_digest(store) == _store_digest(golden_store), \
        f"seed {seed}: trace store diverged"
    assert len(result.outcomes) == len(golden.outcomes)


@pytest.mark.parametrize("seed", range(6))
def test_seeded_schedules_fast(tmp_path, seed):
    _seeded_fleet_schedule(tmp_path, seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(6, 50))
def test_seeded_schedules_full(tmp_path, seed):
    _seeded_fleet_schedule(tmp_path, seed)


# ----------------------------------------------------------------- CLI


def test_cli_fleet_roles_validated(capsys, tmp_path):
    assert main(["sweep", "relu", "--worker"]) == 2
    assert "--fleet-dir" in capsys.readouterr().err
    assert main(["sweep", "relu",
                 "--fleet-dir", str(tmp_path / "f")]) == 2
    assert "role" in capsys.readouterr().err
    assert main(["sweep", "relu", "--fleet-dir", str(tmp_path / "f"),
                 "--worker", "--coordinate"]) == 2
    assert "one fleet role" in capsys.readouterr().err


def test_cli_fleet_init_worker_coordinate_round_trip(capsys, tmp_path):
    fleet = str(tmp_path / "fleet")
    assert main(["sweep", "fir", "--sizes", "64", "--methods",
                 "photon", "--seed", "7",
                 "--fleet-dir", fleet, "--fleet-init"]) == 0
    out = capsys.readouterr().out
    assert "fleet" in out
    assert main(["sweep", "--fleet-dir", fleet, "--worker",
                 "--host-id", "cli-w1"]) == 0
    assert "cli-w1" in capsys.readouterr().out
    assert main(["sweep", "--fleet-dir", fleet, "--coordinate"]) == 0
    out = capsys.readouterr().out
    assert "fir" in out and "photon" in out  # the merged table
    golden = run_sweep(_plan())
    # the CLI-run fleet renders the same deterministic table the
    # library produces inline
    assert comparison_table(golden.rows, deterministic=True)


def test_cli_worker_rejects_workloads(capsys, tmp_path):
    fleet = str(tmp_path / "fleet")
    assert main(["sweep", "fir", "--sizes", "64", "--methods",
                 "photon", "--fleet-dir", fleet, "--fleet-init"]) == 0
    capsys.readouterr()
    assert main(["sweep", "relu", "--fleet-dir", fleet,
                 "--worker"]) == 2
    assert "worker" in capsys.readouterr().err.lower()

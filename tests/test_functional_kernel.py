"""Kernel and Application containers."""

import pytest

from repro.errors import WorkloadError
from repro.functional import Application, GlobalMemory, Kernel
from repro.isa import KernelBuilder


def trivial_program(name="t"):
    b = KernelBuilder(name)
    b.s_endpgm()
    return b.build()


def make_kernel(n_warps=8, wg_size=4, name=""):
    return Kernel(program=trivial_program(), n_warps=n_warps,
                  wg_size=wg_size, memory=GlobalMemory(64), name=name)


def test_workgroup_geometry():
    kernel = make_kernel(n_warps=10, wg_size=4)
    assert kernel.n_workgroups == 3
    assert list(kernel.warps_in_workgroup(0)) == [0, 1, 2, 3]
    assert list(kernel.warps_in_workgroup(2)) == [8, 9]  # ragged tail
    assert kernel.workgroup_of(0) == 0
    assert kernel.workgroup_of(9) == 2


def test_workgroup_of_out_of_range():
    kernel = make_kernel(n_warps=4)
    with pytest.raises(WorkloadError):
        kernel.workgroup_of(4)
    with pytest.raises(WorkloadError):
        kernel.workgroup_of(-1)


def test_kernel_name_defaults_to_program_name():
    assert make_kernel(name="").name == "t"
    assert make_kernel(name="custom").name == "custom"


def test_invalid_warp_size():
    with pytest.raises(WorkloadError):
        Kernel(program=trivial_program(), n_warps=1, wg_size=1,
               memory=GlobalMemory(64), warp_size=0)


def test_application_container():
    app = Application("app")
    assert app.n_kernels == 0
    app.launch(make_kernel(n_warps=3))
    app.extend([make_kernel(n_warps=5), make_kernel(n_warps=2)])
    assert app.n_kernels == 3
    assert app.total_warps == 10
    assert [k.n_warps for k in app] == [3, 5, 2]

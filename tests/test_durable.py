"""Durable-write primitives, filesystem fault injection, retry backoff.

``durable_replace`` must be all-or-nothing across every injected
failure mode — the target keeps its previous complete content and no
temp litter survives.  ``durable_append`` must model a crash as exactly
the flushed partial tail.  Retry backoff must be a pure function of
(policy, attempt) so sweeps stay reproducible down to their retry
schedule.
"""

import errno
import json

import pytest

from repro.durable import durable_append, durable_replace, fsync_dir
from repro.errors import ConfigError, DiskFault, InjectedFault
from repro.obs import RELIABILITY_RETRY, MemorySink, scoped_bus
from repro.reliability import (
    FS_FAULT_MODES,
    FsFaultPlan,
    FsFaultSpec,
    RetryPolicy,
    current_fs_faults,
    scoped_fs_faults,
)

# ------------------------------------------------------ durable_replace


def test_durable_replace_writes_and_replaces(tmp_path):
    target = tmp_path / "state.json"
    durable_replace(b"first", target)
    assert target.read_bytes() == b"first"
    durable_replace(b"second", target)
    assert target.read_bytes() == b"second"
    assert list(tmp_path.iterdir()) == [target]  # no temp litter


@pytest.mark.parametrize("mode", FS_FAULT_MODES)
def test_durable_replace_failures_keep_previous_content(tmp_path, mode):
    target = tmp_path / "state.json"
    durable_replace(b"previous complete content", target)
    plan = FsFaultPlan(FsFaultSpec(site="test.site", mode=mode))
    expected = DiskFault if mode == "torn" else OSError
    with scoped_fs_faults(plan):
        with pytest.raises(expected):
            durable_replace(b"new content that dies", target,
                            site="test.site")
    assert plan.fired == [("test.site", mode, "state.json")]
    # all-or-nothing: old content intact, temp file cleaned up
    assert target.read_bytes() == b"previous complete content"
    assert list(tmp_path.iterdir()) == [target]


def test_durable_replace_enospc_is_enospc(tmp_path):
    plan = FsFaultPlan(FsFaultSpec(site="*", mode="enospc"))
    with scoped_fs_faults(plan):
        with pytest.raises(OSError) as info:
            durable_replace(b"data", tmp_path / "f")
    assert info.value.errno == errno.ENOSPC


# ------------------------------------------------------- durable_append


def test_durable_append_returns_bytes_written(tmp_path):
    path = tmp_path / "log.jsonl"
    with open(path, "ab") as handle:
        assert durable_append(handle, b"one\n", path) == 4
        assert durable_append(handle, b"two\n", path) == 4
    assert path.read_bytes() == b"one\ntwo\n"


def test_durable_append_torn_leaves_partial_tail(tmp_path):
    path = tmp_path / "log.jsonl"
    plan = FsFaultPlan(FsFaultSpec(site="wal", mode="torn", at=2,
                                   fraction=0.5))
    with scoped_fs_faults(plan), open(path, "ab") as handle:
        durable_append(handle, b"complete-record\n", path, site="wal")
        with pytest.raises(DiskFault):
            durable_append(handle, b"doomed-record-xy\n", path,
                           site="wal")
    # the crash left exactly the flushed prefix on disk
    raw = path.read_bytes()
    assert raw.startswith(b"complete-record\n")
    tail = raw[len(b"complete-record\n"):]
    assert tail == b"doomed-r" and not tail.endswith(b"\n")


def test_fsync_dir_tolerates_missing_directory(tmp_path):
    fsync_dir(tmp_path / "does-not-exist")  # must not raise


# ------------------------------------------------------- fsfault plans


def test_fs_fault_spec_validation():
    with pytest.raises(ConfigError, match="unknown fs fault mode"):
        FsFaultSpec(site="x", mode="gamma-ray")
    with pytest.raises(ConfigError, match="fraction"):
        FsFaultSpec(site="x", fraction=1.5)


def test_fs_fault_at_count_semantics(tmp_path):
    plan = FsFaultPlan(FsFaultSpec(site="s", mode="enospc", at=2,
                                   count=2))
    with scoped_fs_faults(plan):
        target = tmp_path / "f"
        durable_replace(b"1", target, site="s")       # visit 1: ok
        for _ in range(2):                            # visits 2, 3: fire
            with pytest.raises(OSError):
                durable_replace(b"x", target, site="s")
        durable_replace(b"4", target, site="s")       # visit 4: ok again
    assert target.read_bytes() == b"4"
    assert len(plan.fired) == 2


def test_scoped_fs_faults_restores_previous_plan():
    assert current_fs_faults() is None
    outer = FsFaultPlan()
    inner = FsFaultPlan()
    with scoped_fs_faults(outer):
        assert current_fs_faults() is outer
        with scoped_fs_faults(inner):
            assert current_fs_faults() is inner
        assert current_fs_faults() is outer
    assert current_fs_faults() is None


def test_wildcard_site_matches_everything(tmp_path):
    plan = FsFaultPlan(FsFaultSpec(site="*", mode="enospc", at=1,
                                   count=99))
    with scoped_fs_faults(plan):
        with pytest.raises(OSError):
            durable_replace(b"a", tmp_path / "one", site="persist.store")
        with pytest.raises(OSError):
            durable_replace(b"b", tmp_path / "two",
                            site="tracestore.bundle")
    assert [site for site, _m, _p in plan.fired] == \
        ["persist.store", "tracestore.bundle"]


def test_persist_and_tracestore_write_through_fault_sites(tmp_path):
    """The real persistence layers are actually wired to the fault hook."""
    from repro.core.persist import save_analysis_store
    from repro.core.photon import AnalysisStore
    from repro.tracestore.store import TraceKey, _write_bundle

    plan = FsFaultPlan(
        FsFaultSpec(site="persist.store", mode="torn"),
        FsFaultSpec(site="tracestore.bundle", mode="torn"))
    with scoped_fs_faults(plan):
        with pytest.raises(DiskFault):
            save_analysis_store(AnalysisStore(), tmp_path / "store.json")
        key = TraceKey(program="p" * 20, data="d" * 20, n_warps=1,
                       wg_size=1, warp_size=4)
        with pytest.raises(DiskFault):
            _write_bundle(tmp_path / "traces" / key.bundle_name, key,
                          {0: b"\x00\x01"})
    assert {site for site, _m, _p in plan.fired} == \
        {"persist.store", "tracestore.bundle"}
    # neither layer left a torn target behind
    assert not (tmp_path / "store.json").exists()
    assert not list((tmp_path / "traces").glob("*.trc"))


# ----------------------------------------------------- retry backoff


def test_backoff_schedule_is_deterministic():
    policy = RetryPolicy(max_attempts=5, backoff_base=0.5, seed=42)
    schedule = [policy.backoff_for(k) for k in range(1, 5)]
    again = [RetryPolicy(max_attempts=5, backoff_base=0.5,
                         seed=42).backoff_for(k) for k in range(1, 5)]
    assert schedule == again
    # exponential growth shape within the jitter envelope
    for k, delay in enumerate(schedule, start=1):
        nominal = min(30.0, 0.5 * 2.0 ** (k - 1))
        assert nominal * 0.9 <= delay <= nominal * 1.1
    # a different seed gives a different (but still valid) schedule
    other = [RetryPolicy(max_attempts=5, backoff_base=0.5,
                         seed=7).backoff_for(k) for k in range(1, 5)]
    assert other != schedule


def test_backoff_respects_cap_and_zero_base():
    assert RetryPolicy(backoff_base=0.0).backoff_for(10) == 0.0
    capped = RetryPolicy(backoff_base=10.0, backoff_max=12.0,
                         jitter=0.0)
    assert capped.backoff_for(5) == 12.0


def test_retry_emits_reliability_retry_events():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise InjectedFault("transient blip")
        return "ok"

    policy = RetryPolicy(max_attempts=3, transient=(InjectedFault,),
                         backoff_base=0.0)
    with scoped_bus() as bus:
        sink = MemorySink()
        bus.add_sink(sink, kinds=[RELIABILITY_RETRY.name])
        result, attempts, backoff = policy.run_logged(flaky)
        events = sink.of_kind(RELIABILITY_RETRY.name)
        assert bus.metrics.counter("reliability.retries").value == 2
    assert (result, attempts, backoff) == ("ok", 3, 0.0)
    assert [e.fields["attempt"] for e in events] == [1, 2]
    assert all(e.fields["error"] == "InjectedFault" for e in events)
    assert all(e.fields["backoff"] == 0.0 for e in events)


def test_retry_backoff_total_reaches_sweep_outcome():
    """backoff_total flows task → outcome → telemetry → report JSON."""
    from repro.parallel import plan_sweep, run_sweep

    tasks = plan_sweep(["fir"], sizes=(64,), methods=("photon",),
                       seed=7,
                       retry=RetryPolicy(max_attempts=2,
                                         backoff_base=0.0))
    result = run_sweep(tasks)
    for telemetry in result.report.tasks:
        assert telemetry.backoff_total == 0.0
        assert telemetry.replayed is False
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["telemetry"]["backoff_seconds"] == 0.0
    assert payload["telemetry"]["replayed"] == 0


def test_retry_policy_serialization_round_trips_backoff():
    from repro.parallel import SweepTask, plan_sweep

    policy = RetryPolicy(max_attempts=3, backoff_base=0.25,
                         backoff_factor=3.0, backoff_max=9.0,
                         jitter=0.2, seed=11)
    task = plan_sweep(["fir"], sizes=(64,), methods=("photon",),
                      retry=policy)[0]
    restored = SweepTask.from_dict(task.to_dict()).retry
    assert restored == policy
    assert restored.backoff_for(2) == policy.backoff_for(2)

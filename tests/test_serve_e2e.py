"""End-to-end: a live ``repro serve`` process under concurrent load.

This is the acceptance scenario for PhotonServe: a real subprocess
with a real worker pool, driven over real sockets —

* concurrent identical (program, data, grid) requests coalesce onto
  one execution and every response is bitwise-identical to a direct
  in-process ``run_task``;
* queue overflow answers 429 with Retry-After;
* SIGTERM drains cleanly: in-flight work finishes, queued work is
  journaled, the process exits 0.
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.parallel.tasks import SweepTask, run_task
from repro.serve import ServeClient, deterministic_result
from repro.serve.lifecycle import read_pending

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class ServeProc:
    """A ``repro serve`` subprocess plus a client bound to it."""

    def __init__(self, *flags: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             *flags],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=str(REPO_ROOT))
        line = self.proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no listening line, got {line!r}"
        self.client = ServeClient(match.group(1), int(match.group(2)),
                                  timeout=120)

    def sigterm_and_wait(self, timeout: float = 60.0):
        self.proc.send_signal(signal.SIGTERM)
        out, err = self.proc.communicate(timeout=timeout)
        return self.proc.returncode, out, err

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate(timeout=10)


def test_e2e_dedup_bitwise_results_and_drain(tmp_path):
    """The full acceptance path against one live server."""
    state = tmp_path / "state"
    server = ServeProc("--jobs", "1", "--queue-limit", "8",
                       "--state-dir", str(state))
    try:
        assert server.client.health() == {"status": "ok"}

        # -- concurrent identical requests coalesce to ONE execution --
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(server.client.run, "relu", 128,
                                   "photon")
                       for _ in range(6)]
            results = [f.result() for f in futures]
        kinds = sorted(r["cache"] for r in results)
        assert kinds.count("miss") == 1          # exactly one execution
        assert set(kinds) <= {"miss", "dedup", "hit"}
        assert len({r["key"] for r in results}) == 1
        stats = server.client.stats()
        assert stats["counts"]["executions"] == 1

        # -- responses are bitwise the direct run_task result --
        direct = deterministic_result(run_task(SweepTask(
            index=0, workload="relu", size=128, method="photon",
            gpu="r9nano")))
        for result in results:
            assert result["result"] == direct

        # -- a repeat is a pure cache hit, no new execution --
        again = server.client.run("relu", 128, "photon")
        assert again["cache"] == "hit"
        assert again["result"] == direct
        assert server.client.stats()["counts"]["executions"] == 1

        # -- SIGTERM: drains and exits 0 --
        code, _out, err = server.sigterm_and_wait()
        assert code == 0
        assert "drained:" in err
    finally:
        server.kill()


def test_e2e_queue_overflow_answers_429(tmp_path):
    import time

    server = ServeProc("--jobs", "1", "--queue-limit", "0")
    try:
        # occupy the single execution slot with a slow ping...
        with ThreadPoolExecutor(max_workers=4) as pool:
            slow = pool.submit(server.client.ping, delay_ms=3000,
                               key="slow")
            deadline = time.monotonic() + 5.0
            while server.client.stats()["queue"]["running"] == 0:
                assert time.monotonic() < deadline, "slot never taken"
                time.sleep(0.05)
            # ...now any distinct request overflows the (empty) waiting
            # room and bounces with explicit backpressure
            status, headers, payload = server.client.post(
                "/v1/ping", {"delay_ms": 0, "key": "bounced"})
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert payload["error"] == "admission queue full"
            # a duplicate of the running request still attaches
            dup = server.client.ping(delay_ms=3000, key="slow")
            assert dup["cache"] == "dedup"
            assert slow.result()["cache"] == "miss"
        code, _out, _err = server.sigterm_and_wait()
        assert code == 0
    finally:
        server.kill()


def test_e2e_sigterm_mid_request_finishes_inflight(tmp_path):
    """Work already executing when SIGTERM lands is not discarded."""
    state = tmp_path / "state"
    server = ServeProc("--jobs", "1", "--queue-limit", "4",
                       "--max-inflight", "1",
                       "--state-dir", str(state), "--drain-grace", "30")
    try:
        with ThreadPoolExecutor(max_workers=4) as pool:
            inflight = pool.submit(server.client.ping, delay_ms=1500,
                                   key="inflight")
            queued = pool.submit(
                server.client.post, "/v1/ping",
                {"delay_ms": 0, "key": "queued"})
            # give both requests time to reach slot / waiting room,
            # then drain while they are still pending
            import time
            time.sleep(0.5)
            server.proc.send_signal(signal.SIGTERM)
            # the in-flight request still completes, normally
            assert inflight.result()["cache"] == "miss"
            status, _headers, payload = queued.result()
            # the queued request either squeezed in before the signal
            # or was displaced, journaled, and told 503
            assert status in (200, 503)
            journaled = status == 503 and payload.get("journaled")
        out, err = server.proc.communicate(timeout=60)
        assert server.proc.returncode == 0
        if journaled:
            pending = read_pending(state)
            assert [p.get("key") for p in pending] == ["queued"]
    finally:
        server.kill()

"""Evaluation harness: metrics, runners, tables."""

import pytest

from repro.baselines import PkaConfig
from repro.errors import SamplingError, WorkloadError
from repro.functional import Application
from repro.harness import (
    LEVEL_METHODS,
    comparison_table,
    format_table,
    measure_online_offline,
    run_methods_app,
    run_methods_kernel,
    series_table,
    sim_time_error,
    wall_speedup,
    workload_factory,
)

from conftest import make_vecadd


def test_metric_formulas():
    assert sim_time_error(100.0, 90.0) == pytest.approx(10.0)
    assert sim_time_error(100.0, 110.0) == pytest.approx(10.0)
    assert wall_speedup(10.0, 2.0) == pytest.approx(5.0)


def test_metric_validation():
    with pytest.raises(SamplingError):
        sim_time_error(0.0, 1.0)
    with pytest.raises(SamplingError):
        wall_speedup(1.0, 0.0)


def test_workload_factory_roundtrip():
    kernel = workload_factory("relu", 64)()
    assert kernel.name == "relu"
    assert kernel.n_warps == 64
    with pytest.raises(WorkloadError):
        workload_factory("nonexistent", 64)


def test_run_methods_kernel(tiny_gpu, fast_photon_config):
    rows = run_methods_kernel(
        lambda: make_vecadd(n_warps=32), "vecadd", 32,
        gpu=tiny_gpu, methods=("pka", "photon"),
        photon_config=fast_photon_config,
    )
    assert [r.method for r in rows] == ["full", "pka", "photon"]
    assert rows[0].error_pct == 0.0
    for row in rows:
        assert row.full_time == rows[0].full_time
        assert row.speedup > 0


def test_run_methods_kernel_level_ablation(tiny_gpu, fast_photon_config):
    rows = run_methods_kernel(
        lambda: make_vecadd(n_warps=32), "vecadd", 32,
        gpu=tiny_gpu, methods=tuple(sorted(LEVEL_METHODS)),
        photon_config=fast_photon_config,
    )
    assert len(rows) == 1 + len(LEVEL_METHODS)


def test_run_methods_rejects_unknown(tiny_gpu, fast_photon_config):
    with pytest.raises(WorkloadError):
        run_methods_kernel(
            lambda: make_vecadd(4), "vecadd", 4, gpu=tiny_gpu,
            methods=("warpspeed",), photon_config=fast_photon_config)


def test_run_methods_app(tiny_gpu, fast_photon_config):
    def factory():
        app = Application("twice")
        app.launch(make_vecadd(n_warps=16))
        app.launch(make_vecadd(n_warps=16))
        return app

    out = run_methods_app(factory, "twice", gpu=tiny_gpu,
                          methods=("photon", "pka"),
                          photon_config=fast_photon_config)
    assert out["full"].method == "full"
    assert out["photon"].n_kernels == 2
    assert out["pka"].n_kernels == 2
    assert len(out["rows"]) == 2


def test_measure_online_offline(tiny_gpu, fast_photon_config):
    def factory():
        app = Application("app")
        app.launch(make_vecadd(n_warps=16))
        return app

    stats = measure_online_offline(factory, gpu=tiny_gpu,
                                   photon_config=fast_photon_config)
    assert stats["store_entries"] == 1.0
    assert stats["store_hits"] >= 1.0
    assert stats["online_wall"] > 0 and stats["offline_wall"] > 0


def test_format_table_alignment():
    text = format_table(("a", "bb"), [(1, 2.5), (10, 3.25)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "2.50" in lines[2] and "3.25" in lines[3]


def test_comparison_table_renders(tiny_gpu, fast_photon_config):
    rows = run_methods_kernel(
        lambda: make_vecadd(n_warps=16), "vecadd", 16,
        gpu=tiny_gpu, methods=("photon",),
        photon_config=fast_photon_config)
    text = comparison_table(rows)
    assert "vecadd" in text and "photon" in text and "err_%" in text


def test_series_table_renders():
    text = series_table("ipc", [0, 1, 2], [3.0, 4.0, 5.0],
                        x_label="t", y_label="ipc")
    assert text.startswith("# ipc")
    assert "4.00" in text


def test_sweep_isolates_unbuildable_size(tiny_gpu, fast_photon_config):
    """A size whose kernel cannot be built yields one failed 'build' row
    and the remaining sizes still produce real data."""
    from repro.harness import sweep_sizes

    rows = sweep_sizes("relu", [0, 32], gpu=tiny_gpu,
                       methods=("photon",),
                       photon_config=fast_photon_config)
    assert rows[0].method == "build" and not rows[0].ok
    assert rows[0].error_class == "WorkloadError"
    good = [r for r in rows if r.size == 32]
    assert [r.method for r in good] == ["full", "photon"]
    assert all(r.ok for r in good)


def test_run_methods_app_isolates_failing_method(tiny_gpu,
                                                 fast_photon_config):
    from repro.reliability import FaultPlan, FaultSpec

    def factory():
        app = Application("twice")
        app.launch(make_vecadd(n_warps=16))
        return app

    plan = FaultPlan(FaultSpec(site="harness.method", kernel="pka"))
    out = run_methods_app(factory, "twice", gpu=tiny_gpu,
                          methods=("photon", "pka"),
                          photon_config=fast_photon_config,
                          fault_plan=plan)
    assert "photon" in out and "pka" not in out
    by_method = {r.method: r for r in out["rows"]}
    assert by_method["photon"].ok
    assert by_method["pka"].error_class == "InjectedFault"


def test_comparison_table_adds_status_column_on_failure(tiny_gpu,
                                                        fast_photon_config):
    from repro.reliability import FaultPlan, FaultSpec

    plan = FaultPlan(FaultSpec(site="harness.method", kernel="pka"))
    rows = run_methods_kernel(
        lambda: make_vecadd(n_warps=16), "vecadd", 16, gpu=tiny_gpu,
        methods=("pka", "photon"), photon_config=fast_photon_config,
        fault_plan=plan)
    text = comparison_table(rows)
    assert "status" in text and "InjectedFault" in text and "ok" in text
    # successful sweeps keep the original column set
    clean = run_methods_kernel(
        lambda: make_vecadd(n_warps=16), "vecadd", 16, gpu=tiny_gpu,
        methods=("photon",), photon_config=fast_photon_config)
    assert "status" not in comparison_table(clean)

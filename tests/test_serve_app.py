"""PhotonServer over real sockets, in-process (``jobs=0``).

The server runs on the test's own event loop with the inline execution
tier, so every admission decision is observable and deterministic;
blocking ``ServeClient`` calls are pushed to executor threads.  The
subprocess / worker-pool behaviour (SIGTERM, process isolation) lives
in test_serve_e2e.py.
"""

import asyncio
import functools
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import SERVE_REQUEST
from repro.parallel.tasks import SweepTask, run_task
from repro.parallel.tier import _crash_outcome
from repro.serve import (
    PhotonServer,
    ServeClient,
    ServeConfig,
    ServeHTTPError,
    deterministic_result,
)
from repro.serve.lifecycle import read_pending


def serve_test(config=None):
    """Run an async test body against a started in-process server."""
    def decorate(fn):
        def wrapper():
            async def body():
                server = PhotonServer(config or ServeConfig(
                    port=0, jobs=0, queue_limit=8))
                host, port = await server.start()
                client = ServeClient(host, port, timeout=30)
                try:
                    await fn(server=server, client=client)
                finally:
                    await server.drain_and_stop()
            asyncio.run(body())
        # keep the test's own name, but NOT its signature — pytest
        # would read the inner (server, client) params as fixtures
        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        return wrapper
    return decorate


# dedicated pool for blocking client calls: the loop's *default*
# executor is only cpu+4 threads (5 on a 1-core CI box), far too few
# for the concurrent-request tests below
_CALLS = ThreadPoolExecutor(max_workers=16,
                            thread_name_prefix="serve-test-client")


def call(fn, *args, **kwargs):
    """One blocking client call on an executor thread.

    Returns the *scheduled* future (not a coroutine): the request is
    already on the wire when this returns, so ``x = call(...)`` really
    does put a request in flight before the test's next await.
    """
    loop = asyncio.get_running_loop()
    return loop.run_in_executor(
        _CALLS, functools.partial(fn, *args, **kwargs))


# -- basics -----------------------------------------------------------------

@serve_test()
async def test_health_stats_and_routing(server, client):
    assert (await call(client.health)) == {"status": "ok"}
    stats = await call(client.stats)
    assert stats["counts"]["requests"] == 0
    assert stats["queue"]["slots"] == 1
    status, _headers, payload = await call(client.get, "/nope")
    assert status == 404 and "no route" in payload["error"]
    status, _headers, payload = await call(
        client.request, "DELETE", "/v1/run")
    assert status == 405


@serve_test()
async def test_malformed_requests_get_400(server, client):
    for path, body in [("/v1/run", {"workload": "nope"}),
                       ("/v1/run", {"workload": "relu", "size": -1}),
                       ("/v1/sweep", {}),
                       ("/v1/ping", {"delay_ms": -5})]:
        status, _headers, payload = await call(client.post, path, body)
        assert status == 400 and "error" in payload, (path, payload)
    assert (await call(client.stats))["counts"]["errors"] == 4


@serve_test()
async def test_run_roundtrip_matches_direct_execution(server, client):
    """A served result is bitwise the direct run_task result."""
    served = await call(client.run, "relu", 128, "photon")
    direct = deterministic_result(run_task(SweepTask(
        index=0, workload="relu", size=128, method="photon",
        gpu="r9nano")))
    assert served["cache"] == "miss"
    assert served["result"] == direct
    again = await call(client.run, "relu", 128, "photon")
    assert again["cache"] == "hit"
    assert again["result"] == direct
    assert again["key"] == served["key"]


@serve_test()
async def test_tenant_header_sets_tenant(server, client):
    status, _headers, payload = await call(
        client.post, "/v1/ping", {}, {"X-Tenant": "alice"})
    assert status == 200
    # the body wins over the header when both are present
    status, _headers, payload = await call(
        client.post, "/v1/ping", {"tenant": "bob"}, {"X-Tenant": "alice"})
    assert status == 200


# -- single-flight dedup over the wire (satellite: dedup coverage) ---------

@serve_test()
async def test_concurrent_identical_requests_coalesce(server, client):
    """N identical in-flight requests → one execution; every waiter
    gets an identical response body."""
    first = call(client.ping, delay_ms=600, key="shared")
    await asyncio.sleep(0.1)  # the flight is now definitely open
    rest = await asyncio.gather(
        *[call(client.ping, delay_ms=600, key="shared")
          for _ in range(5)])
    results = [await first] + list(rest)
    kinds = sorted(r["cache"] for r in results)
    assert kinds == ["dedup"] * 5 + ["miss"]
    bodies = [r["result"] for r in results]
    assert all(b == bodies[0] for b in bodies)
    stats = await call(client.stats)
    assert stats["coalesced"] == 5
    assert stats["counts"]["dedup"] == 5


@serve_test()
async def test_concurrent_identical_runs_execute_once(server, client):
    def run():
        return client.run("relu", 128, "photon")

    results = await asyncio.gather(*[call(run) for _ in range(4)])
    kinds = sorted(r["cache"] for r in results)
    # exactly one execution; the rest attached to it (dedup) or, if
    # they arrived after it finished, read its cached result (hit)
    assert kinds.count("miss") == 1
    assert all(kind in ("miss", "dedup", "hit") for kind in kinds)
    assert len({r["key"] for r in results}) == 1
    bodies = [r["result"] for r in results]
    assert all(b == bodies[0] for b in bodies)
    stats = await call(client.stats)
    assert stats["counts"]["executions"] == 1


# -- backpressure (satellite: backpressure coverage) ------------------------

@serve_test(ServeConfig(port=0, jobs=0, queue_limit=1, max_inflight=1))
async def test_queue_overflow_answers_429_with_retry_after(server, client):
    """One slot + one waiting spot: the third distinct in-flight
    request bounces with 429 and a whole-second Retry-After."""
    slow = [call(client.ping, delay_ms=400, key=f"k{i}")
            for i in range(2)]
    await asyncio.sleep(0.1)  # let both occupy slot + waiting room
    status, headers, payload = await call(
        client.post, "/v1/ping", {"delay_ms": 0, "key": "k2"})
    assert status == 429
    assert int(headers["retry-after"]) >= 1
    assert payload["error"] == "admission queue full"
    assert payload["retry_after"] == int(headers["retry-after"])
    results = await asyncio.gather(*slow)
    assert all(r["cache"] == "miss" for r in results)
    stats = await call(client.stats)
    assert stats["counts"]["rejected_queue"] == 1


@serve_test(ServeConfig(port=0, jobs=0, queue_limit=1, max_inflight=1))
async def test_dedup_waiters_bypass_queue_limit(server, client):
    """Attaching to an in-flight execution adds no work, so it is
    never bounced for queue fullness."""
    first = call(client.ping, delay_ms=300, key="shared")
    await asyncio.sleep(0.05)
    filler = call(client.ping, delay_ms=0, key="other")   # fills queue
    await asyncio.sleep(0.05)
    dup = await call(client.ping, delay_ms=300, key="shared")
    assert dup["cache"] in ("dedup", "hit")
    await asyncio.gather(first, filler)


@serve_test(ServeConfig(port=0, jobs=0, queue_limit=8,
                        tenant_rate=1.0, tenant_burst=2.0))
async def test_tenant_quota_throttles_only_the_greedy_tenant(server,
                                                             client):
    def ping(tenant, key):
        return client.post("/v1/ping",
                           {"tenant": tenant, "key": key})

    for i in range(2):  # burst allowance
        status, _h, _p = await call(ping, "greedy", f"g{i}")
        assert status == 200
    status, headers, payload = await call(ping, "greedy", "g2")
    assert status == 429
    assert payload["error"] == "tenant rate limit exceeded"
    assert int(headers["retry-after"]) >= 1
    # the other tenant is completely unaffected
    status, _h, _p = await call(ping, "polite", "p0")
    assert status == 200
    stats = await call(client.stats)
    assert stats["counts"]["rejected_quota"] == 1


@serve_test(ServeConfig(port=0, jobs=0, queue_limit=8,
                        tenant_max_inflight=1))
async def test_tenant_inflight_cap(server, client):
    slow = call(client.post, "/v1/ping",
                {"tenant": "t", "delay_ms": 300, "key": "a"})
    await asyncio.sleep(0.05)
    status, _h, payload = await call(
        client.post, "/v1/ping", {"tenant": "t", "key": "b"})
    assert status == 429
    assert payload["error"] == "tenant max-inflight exceeded"
    status, _h, _p = await call(
        client.post, "/v1/ping", {"tenant": "u", "key": "c"})
    assert status == 200
    await slow


# -- graceful drain (satellite: drain coverage) -----------------------------

def test_drain_finishes_inflight_journals_queued_rejects_new(tmp_path):
    async def body():
        server = PhotonServer(ServeConfig(
            port=0, jobs=0, queue_limit=4, max_inflight=1,
            state_dir=str(tmp_path), drain_grace=10.0))
        host, port = await server.start()
        client = ServeClient(host, port, timeout=30)
        # one request holding the slot, one queued behind it
        inflight = call(client.ping, delay_ms=400, key="inflight")
        await asyncio.sleep(0.1)
        queued = call(client.post, "/v1/ping",
                      {"delay_ms": 0, "key": "queued"})
        await asyncio.sleep(0.1)

        server.begin_drain()
        # new work is refused immediately with 503
        status, headers, payload = await call(
            client.post, "/v1/ping", {"key": "late"})
        assert status == 503 and "draining" in payload["error"]
        assert int(headers["retry-after"]) >= 1
        # the in-flight request completes normally
        result = await inflight
        assert result["cache"] == "miss"
        # the queued request was displaced and journaled
        status, _headers, payload = await queued
        assert status == 503
        assert payload["journaled"] is True
        stats = await server.drain_and_stop()
        assert stats["counts"]["drained"] == 1
        assert stats["counts"]["rejected_draining"] >= 1

    asyncio.run(body())
    pending = read_pending(tmp_path)
    assert len(pending) == 1
    assert pending[0]["key"] == "queued"


def test_drain_without_state_dir_still_answers_503():
    async def body():
        server = PhotonServer(ServeConfig(port=0, jobs=0, queue_limit=4,
                                          max_inflight=1))
        host, port = await server.start()
        client = ServeClient(host, port, timeout=30)
        inflight = call(client.ping, delay_ms=300, key="a")
        await asyncio.sleep(0.05)
        queued = call(client.post, "/v1/ping", {"key": "b"})
        await asyncio.sleep(0.05)
        server.begin_drain()
        assert (await inflight)["cache"] == "miss"
        status, _headers, payload = await queued
        assert status == 503 and payload["journaled"] is False
        await server.drain_and_stop()

    asyncio.run(body())


# -- result cache vs infrastructure failures --------------------------------

@serve_test()
async def test_infra_crash_outcome_is_not_cached(server, client):
    """A pool-crash error outcome must not poison the result LRU: the
    next identical request re-executes and its good result is cached."""
    real_run = server.tier.run
    calls = {"n": 0}

    async def flaky_run(task):
        calls["n"] += 1
        if calls["n"] == 1:
            return _crash_outcome(task, RuntimeError("worker pool broken"))
        return await real_run(task)

    server.tier.run = flaky_run
    first = await call(client.run, "relu", 128, "photon")
    assert first["cache"] == "miss"
    assert first["result"]["status"] == "error"
    assert first["result"]["stage"] == "pool"
    second = await call(client.run, "relu", 128, "photon")
    assert second["cache"] == "miss"          # error was NOT served warm
    assert second["result"]["status"] == "ok"
    third = await call(client.run, "relu", 128, "photon")
    assert third["cache"] == "hit"            # the good result IS cached
    assert third["result"] == second["result"]
    assert calls["n"] == 2


# -- sweeps and streaming ---------------------------------------------------

@serve_test(ServeConfig(port=0, jobs=0, queue_limit=8,
                        tenant_rate=1.0, tenant_burst=1.0,
                        tenant_max_inflight=1))
async def test_sweep_admits_once_under_tight_tenant_quotas(server, client):
    """Regression: sweep cells must not re-enter the tenant gate.  With
    max-inflight 1 and a single burst token the parent sweep consumes
    both; its cells run under that one admission and the sweep succeeds
    instead of answering a false 503."""
    result = await call(client.sweep, ["relu"], sizes=[128],
                        methods=["photon"])
    assert result["tasks"] == 2
    assert result["cache"] == {"hit": 0, "dedup": 0, "miss": 2}
    stats = await call(client.stats)
    assert stats["counts"]["rejected_quota"] == 0
    assert stats["counts"]["rejected_draining"] == 0


def test_sweep_drain_journals_per_cell_run_requests(tmp_path):
    """Cells displaced by drain journal themselves as single-run
    requests — replaying pending.jsonl re-runs each shed cell once,
    never the whole sweep per cell."""
    async def body():
        server = PhotonServer(ServeConfig(
            port=0, jobs=0, queue_limit=8, max_inflight=1,
            state_dir=str(tmp_path), drain_grace=10.0))
        host, port = await server.start()
        client = ServeClient(host, port, timeout=30)
        hold = call(client.ping, delay_ms=700, key="hold")
        await asyncio.sleep(0.1)
        sweep = call(client.post, "/v1/sweep",
                     {"workloads": ["relu"], "sizes": [128],
                      "methods": ["photon"]})
        await asyncio.sleep(0.2)   # cells keyed and queued behind hold
        server.begin_drain()
        assert (await hold)["cache"] == "miss"
        status, _headers, payload = await sweep
        assert status == 503
        assert payload["journaled"] is True
        await server.drain_and_stop()

    asyncio.run(body())
    pending = read_pending(tmp_path)
    assert len(pending) == 2   # full baseline + photon, one entry each
    for entry in pending:
        assert entry["op"] == "run"
        assert entry["workload"] == "relu"
        assert "workloads" not in entry
    assert {e["method"] for e in pending} == {"full", "photon"}


@serve_test()
async def test_serve_request_events_carry_stable_req_ids(server, client):
    """The serve.request req field is the id allocated for the request,
    not a fresh draw — ids are consecutive with no gaps."""
    seen = []
    forward = lambda *args: seen.append(args)
    server.bus.subscribe(SERVE_REQUEST, forward)
    try:
        await call(client.ping, key="a")
        await call(client.ping, key="b")
    finally:
        server.bus.unsubscribe(SERVE_REQUEST, forward)
    reqs = [fields[0] for fields in seen]
    assert reqs == [1, 2]
    ops = [fields[2] for fields in seen]
    assert ops == ["ping", "ping"]

@serve_test()
async def test_sweep_decomposes_through_the_cache(server, client):
    cold = await call(client.sweep, ["relu"], sizes=[128],
                      methods=["photon"])
    assert cold["tasks"] == 2  # full baseline + photon
    assert cold["cache"] == {"hit": 0, "dedup": 0, "miss": 2}
    assert {r["method"] for r in cold["rows"]} == {"full", "photon"}
    warm = await call(client.sweep, ["relu"], sizes=[128],
                      methods=["photon"])
    assert warm["cache"] == {"hit": 2, "dedup": 0, "miss": 0}
    assert warm["rows"] == cold["rows"]
    assert "relu" in warm["table"]
    # a single run of the same cell is also a pure hit now
    run = await call(client.run, "relu", 128, "photon")
    assert run["cache"] == "hit"


@serve_test()
async def test_streaming_response_carries_lifecycle_events(server,
                                                           client):
    def stream():
        return list(client.stream("/v1/ping",
                                  {"delay_ms": 50, "key": "sk"}))

    events = await call(stream)
    assert events[0]["event"] == "accepted"
    queue_actions = [e["action"] for e in events
                     if e["event"] == "serve.queue"]
    assert queue_actions == ["enqueue", "start", "done"]
    done = events[-1]
    assert done["event"] == "done" and done["status"] == 200
    assert done["response"]["cache"] == "miss"


@serve_test()
async def test_streaming_failure_emits_error_line_not_http_head(server,
                                                                client):
    """An exception mid-stream becomes a final JSONL error event; the
    server must never splice a second HTTP response head into the
    already-started ndjson body."""
    async def boom(key, work, raw, cacheable):
        raise RuntimeError("kaboom")

    server._execute = boom

    def stream():
        # the client json-decodes every line: a stray "HTTP/1.1 500 ..."
        # head in the body would raise here
        return list(client.stream("/v1/ping", {"delay_ms": 0,
                                               "key": "sx"}))

    events = await call(stream)
    assert events[0]["event"] == "accepted"
    assert events[-1]["event"] == "error"
    assert "kaboom" in events[-1]["error"]
    assert all(e["event"] != "done" for e in events)


# -- restart replay (pending.jsonl) ----------------------------------------

def _write_pending(tmp_path, records):
    import json

    path = tmp_path / "pending.jsonl"
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


def test_replay_pending_serves_journaled_work_and_truncates(tmp_path):
    """On startup the server replays drained pending.jsonl through the
    normal admission path — valid records execute and land in the
    result cache, malformed ones are dropped — then truncates the
    journal durably."""
    _write_pending(tmp_path, [
        {"op": "run", "workload": "relu", "size": 128, "method": "photon"},
        {"op": "ping", "delay_ms": 0, "key": "p1"},
        {"op": "run", "workload": "no_such_workload"},  # dropped
    ])

    async def body():
        server = PhotonServer(ServeConfig(
            port=0, jobs=0, queue_limit=8, state_dir=str(tmp_path)))
        replayed = await server.replay_pending()
        assert replayed == 2
        assert server.counts["replayed"] == 2
        assert server.counts["errors"] == 1
        # the run's result is warm: a fresh identical request is a hit
        host, port = await server.start()
        client = ServeClient(host, port, timeout=30)
        result = await call(client.run, "relu", 128, "photon")
        assert result["cache"] == "hit"
        # idempotent: the journal was truncated, nothing replays twice
        assert await server.replay_pending() == 0
        await server.drain_and_stop()

    asyncio.run(body())
    assert read_pending(tmp_path) == []
    assert (tmp_path / "pending.jsonl").read_bytes() == b""


def test_replay_pending_without_state_dir_is_a_noop():
    async def body():
        server = PhotonServer(ServeConfig(port=0, jobs=0))
        assert await server.replay_pending() == 0

    asyncio.run(body())


def test_drained_ping_replays_as_ping_after_restart(tmp_path):
    """End-to-end drain -> restart: the journaled body carries its op
    (stamped at journal time, since the op normally lives in the URL),
    so a shed /v1/ping replays as a ping, not a malformed run."""
    async def body():
        server = PhotonServer(ServeConfig(
            port=0, jobs=0, queue_limit=4, max_inflight=1,
            state_dir=str(tmp_path), drain_grace=10.0))
        host, port = await server.start()
        client = ServeClient(host, port, timeout=30)
        inflight = call(client.ping, delay_ms=400, key="inflight")
        await asyncio.sleep(0.1)
        queued = call(client.post, "/v1/ping",
                      {"delay_ms": 0, "key": "queued"})
        await asyncio.sleep(0.1)
        server.begin_drain()
        await inflight
        status, _headers, payload = await queued
        assert status == 503 and payload["journaled"] is True
        await server.drain_and_stop()

    asyncio.run(body())
    pending = read_pending(tmp_path)
    assert len(pending) == 1
    assert pending[0]["op"] == "ping"

    async def restart():
        server = PhotonServer(ServeConfig(
            port=0, jobs=0, queue_limit=4, state_dir=str(tmp_path)))
        assert await server.replay_pending() == 1
        assert server.counts["errors"] == 0

    asyncio.run(restart())
    assert read_pending(tmp_path) == []

"""Every layer emits through the bus: engine, executor, detectors,
reliability, and the sweep scheduler, observed end to end.

Also covers the legacy-listener compatibility contract: an
``EngineListener`` attached with :meth:`DetailedEngine.attach` and a
plain function subscribed to the corresponding bus channel must observe
identical event sequences.
"""

import dataclasses

import pytest

from repro.core import Photon
from repro.errors import BudgetExceeded, InjectedFault
from repro.functional import FunctionalExecutor
from repro.obs import (
    DETECTOR_SWITCH,
    ENGINE_BB,
    ENGINE_INST,
    ENGINE_KERNEL,
    ENGINE_WARP_RETIRE,
    EXEC_WARP,
    PARALLEL_TASK,
    EventBus,
    MemorySink,
    scoped_bus,
)
from repro.parallel import plan_sweep, run_sweep
from repro.reliability import FaultPlan, FaultSpec, WatchdogConfig
from repro.timing import BBProbe, DetailedEngine, WarpProbe

from conftest import make_barrier_kernel, make_loop_kernel, make_vecadd

# ------------------------------------------------------------ engine


def test_engine_emits_full_event_stream(tiny_gpu):
    bus = EventBus()
    sink = bus.add_sink(MemorySink())
    kernel = make_barrier_kernel(n_warps=8, wg_size=4)
    engine = DetailedEngine(kernel, tiny_gpu, bus=bus)
    res = engine.run()
    kinds = sink.kinds()
    assert kinds["engine.kernel"] == 1
    assert kinds["engine.warp_retire"] == 8
    assert kinds["engine.warp_dispatch"] == 8
    assert kinds["engine.wg_dispatch"] == 2
    assert kinds["engine.barrier"] == 2
    assert kinds["engine.bb"] == 8 * 2  # the barrier splits 2 blocks
    # one inst event per dynamic instruction
    assert kinds["engine.inst"] == res.n_insts
    summary = sink.of_kind("engine.kernel")[0]
    assert summary.fields["kernel"] == "barriered"
    assert summary.fields["t1"] == res.end_time
    assert summary.fields["n_insts"] == res.n_insts
    assert summary.fields["stopped"] is False
    # the stream is recorded in emission order: monotone seq
    seqs = [e.seq for e in sink.events]
    assert seqs == sorted(seqs)


def test_engine_detached_run_leaves_bus_silent(tiny_gpu):
    bus = EventBus()
    engine = DetailedEngine(make_vecadd(n_warps=8), tiny_gpu, bus=bus)
    engine.run()
    sink = bus.add_sink(MemorySink())
    assert sink.events == []  # nothing buffered, nothing replayed


def test_engine_waitcnt_events(tiny_gpu):
    bus = EventBus()
    sink = bus.add_sink(MemorySink(), kinds=["engine.waitcnt"])
    kernel = make_vecadd(n_warps=8)  # one s_waitcnt per warp
    engine = DetailedEngine(kernel, tiny_gpu, bus=bus)
    engine.run()
    assert len(sink.events) == 8
    warps = sorted(e.fields["warp"] for e in sink.events)
    assert warps == list(range(8))


def test_legacy_listener_and_subscriber_see_identical_sequences(
        tiny_gpu):
    bus = EventBus()
    direct = []
    bus.subscribe(ENGINE_BB,
                  lambda *args: direct.append(("bb", *args)))
    bus.subscribe(ENGINE_WARP_RETIRE,
                  lambda *args: direct.append(("retire", *args)))
    probe = BBProbe()
    warp_probe = WarpProbe()
    kernel = make_loop_kernel(n_warps=8, trips_of=lambda w: 4)
    engine = DetailedEngine(kernel, tiny_gpu, bus=bus)
    engine.attach(probe)
    engine.attach(warp_probe)
    engine.run()
    bb_stream = [e[1:] for e in direct if e[0] == "bb"]
    # per-pc bb streams match exactly, in delivery order
    for pc, times in probe.records.items():
        assert [(t0, t1) for _, p, t0, t1 in bb_stream
                if p == pc] == times
    assert sum(len(t) for t in probe.records.values()) == len(bb_stream)
    # the retire stream matches the legacy probe tuple for tuple
    assert [(w, d, r) for _, w, d, r in
            (e for e in direct if e[0] == "retire")] == warp_probe.times


def test_listener_shim_unsubscribes_after_run(tiny_gpu):
    bus = EventBus()
    probe = BBProbe()
    engine = DetailedEngine(make_vecadd(n_warps=4), tiny_gpu, bus=bus)
    engine.attach(probe)
    engine.run()
    assert not bus.channel(ENGINE_BB).active
    assert not bus.channel(ENGINE_WARP_RETIRE).active


def test_per_instruction_stream_only_when_subscribed(tiny_gpu):
    bus = EventBus()
    sink = bus.add_sink(MemorySink(), kinds=[ENGINE_INST.name])
    kernel = make_vecadd(n_warps=4)
    engine = DetailedEngine(kernel, tiny_gpu, bus=bus)
    res = engine.run()
    assert len(sink.events) == res.n_insts
    for event in sink.events:
        assert event.fields["t1"] >= event.fields["t0"] >= 0


# ------------------------------------------------------------ executor


def test_executor_emits_warp_events(tiny_gpu):
    bus = EventBus()
    sink = bus.add_sink(MemorySink(), kinds=[EXEC_WARP.name])
    kernel = make_loop_kernel(n_warps=4, trips_of=lambda w: 3)
    executor = FunctionalExecutor(kernel, bus=bus)
    full = executor.run_warp_full(0)
    control = executor.run_warp_control(1)
    assert [e.fields["mode"] for e in sink.events] == ["full", "control"]
    assert sink.events[0].fields["n_insts"] == full.n_insts
    assert sink.events[1].fields["n_insts"] == control.n_insts
    for event in sink.events:
        assert event.fields["wall"] >= 0.0


# ------------------------------------------------------------ detectors


def test_detector_switch_event(tiny_gpu, fast_photon_config):
    from repro.core import BBVProjector, analyze_kernel
    from repro.core.detectors import WarpSamplingDetector

    bus = EventBus()
    sink = bus.add_sink(MemorySink(), kinds=[DETECTOR_SWITCH.name])
    kernel = make_loop_kernel(n_warps=700, trips_of=lambda w: 6)
    analysis = analyze_kernel(kernel, fast_photon_config,
                              BBVProjector(fast_photon_config.bbv_dim))
    detector = WarpSamplingDetector(analysis, fast_photon_config)
    engine = DetailedEngine(kernel, tiny_gpu, bus=bus)
    engine.attach(detector)
    engine.run()
    assert detector.switched
    assert len(sink.events) == 1
    switch = sink.events[0]
    assert switch.fields["level"] == "warp"
    assert switch.fields["kernel"] == "loopy"
    assert switch.fields["t"] == detector.switch_time
    assert bus.metrics.counter("detector.warp_switches").value == 1


# ------------------------------------------------------------ reliability


def test_watchdog_trip_emits_event():
    with scoped_bus() as bus:
        sink = bus.add_sink(MemorySink())
        dog = WatchdogConfig(max_events=5).for_engine("engine:test")
        dog.tick(5)
        with pytest.raises(BudgetExceeded):
            dog.tick(1)
        assert [e.kind for e in sink.events] == ["reliability.watchdog"]
        trip = sink.events[0]
        assert trip.fields == {"label": "engine:test", "unit": "events",
                               "ticks": 6, "reason": "budget"}
        assert bus.metrics.counter("watchdog.trips").value == 1


def test_fault_fire_emits_event():
    with scoped_bus() as bus:
        sink = bus.add_sink(MemorySink())
        plan = FaultPlan(FaultSpec(site="level.bb"))
        with pytest.raises(InjectedFault):
            plan.arm("level.bb", kernel="k1", level="bb")
        assert [e.kind for e in sink.events] == ["reliability.fault"]
        assert sink.events[0].fields == {"site": "level.bb",
                                         "error": "InjectedFault",
                                         "kernel": "k1"}


def test_degradation_mirrors_ledger_on_bus(tiny_gpu, fast_photon_config):
    bus = EventBus()
    sink = bus.add_sink(MemorySink())
    plan = FaultPlan(FaultSpec(site="level.warp"))
    photon = Photon(tiny_gpu, fast_photon_config, fault_plan=plan,
                    bus=bus)
    kernel = make_loop_kernel(n_warps=700, trips_of=lambda w: 6)
    result = photon.simulate_kernel(kernel)
    assert result.degraded
    fallbacks = sink.of_kind("reliability.fallback")
    assert [(e.fields["from_level"], e.fields["to_level"])
            for e in fallbacks] == [
        (ev.from_level, ev.to_level) for ev in result.errors]
    # the injected fault that caused the fallback is interleaved before
    faults = sink.of_kind("reliability.fault")
    assert faults == []  # plan events go to the *default* bus
    assert bus.metrics.counter("photon.fallbacks").value == len(
        result.errors)


def test_full_photon_run_under_scoped_bus(tiny_gpu, fast_photon_config):
    """One scoped bus observes engine, detector, fault and fallback."""
    with scoped_bus() as bus:
        sink = bus.add_sink(MemorySink())
        plan = FaultPlan(FaultSpec(site="level.warp"))
        photon = Photon(tiny_gpu, fast_photon_config, fault_plan=plan)
        kernel = make_loop_kernel(n_warps=700, trips_of=lambda w: 6)
        result = photon.simulate_kernel(kernel)
        kinds = sink.kinds()
        assert kinds["reliability.fault"] == 1
        assert kinds["reliability.fallback"] == len(result.errors) >= 1
        assert kinds["engine.kernel"] >= 2  # failed attempt + retry
        assert kinds["detector.switch"] >= 1
        # stream order: the fault precedes the fallback it caused
        order = [e.kind for e in sink.events]
        assert (order.index("reliability.fault")
                < order.index("reliability.fallback"))


# ------------------------------------------------------------ parallel


def test_sweep_emits_task_events(tiny_gpu):
    with scoped_bus() as bus:
        sink = bus.add_sink(MemorySink(), kinds=[PARALLEL_TASK.name])
        tasks = plan_sweep(["relu"], sizes=(256,), methods=("photon",))
        result = run_sweep(tasks, jobs=1)
        assert len(sink.events) == len(tasks)
        by_index = [e.fields["index"] for e in sink.events]
        assert by_index == [t.index for t in tasks]
        for event, telemetry in zip(sink.events, result.report.tasks):
            assert event.fields["workload"] == telemetry.workload
            assert event.fields["method"] == telemetry.method
            assert event.fields["status"] == telemetry.status
            assert (event.fields["t1"] - event.fields["t0"]
                    == pytest.approx(telemetry.task_wall))
        assert bus.metrics.counter("sweep.tasks").value == len(tasks)


def test_parallel_sweep_keeps_parent_trace_clean(tiny_gpu):
    """Pool workers must not write into the parent's sinks."""
    with scoped_bus() as bus:
        sink = bus.add_sink(MemorySink())
        tasks = plan_sweep(["relu"], sizes=(256,), methods=("photon",))
        run_sweep(tasks, jobs=2)
        # only the parent-side re-emitted task events appear — no
        # engine/executor noise leaked across process boundaries
        assert set(sink.kinds()) == {"parallel.task"}
        assert len(sink.events) == len(tasks)


# ------------------------------------------------------------ phase spans


def test_metrics_phase_names_are_pinned(tiny_gpu, tmp_path):
    """``--metrics`` reports these phase names; renaming them breaks
    every dashboard and CI grep downstream, so the set is pinned here."""
    from repro.timing import TraceCache, scoped_trace_cache
    from repro.tracestore import TraceStore

    with scoped_bus() as bus:
        cache = TraceCache(backing_store=TraceStore(tmp_path))
        with scoped_trace_cache(cache):
            DetailedEngine(make_vecadd(n_warps=4), tiny_gpu).run()
        cache.flush()
        phases = bus.metrics.phases()
    assert {"functional", "timing", "timing.batch", "trace_io"} <= set(phases)
    assert phases["functional"] > 0.0
    assert phases["timing.batch"] > 0.0
    assert phases["trace_io"] > 0.0


def test_exec_driven_run_has_no_trace_io_phase(tiny_gpu):
    with scoped_bus() as bus:
        DetailedEngine(make_vecadd(n_warps=4), tiny_gpu).run()
        phases = bus.metrics.phases()
    # TimePack nests its own phase inside ``timing`` (exclusive spans),
    # so a batched exec-driven run shows exactly these three
    assert set(phases) == {"functional", "timing", "timing.batch"}


def test_timing_batch_metrics_vocabulary(tiny_gpu):
    """Pinned TimePack vocabulary: the ``timing.batch`` span and the
    ``engine.batch.*`` counters are what sweeps/dashboards grep for."""
    with scoped_bus() as bus:
        DetailedEngine(make_vecadd(n_warps=4), tiny_gpu).run()
        counters = bus.metrics.snapshot()["counters"]
        phases = bus.metrics.phases()
    assert "timing.batch" in phases
    assert counters["engine.batch.runs"] == 1
    assert "engine.batch.rounds" in counters
    assert (counters.get("engine.batch.batched_insts", 0)
            + counters.get("engine.batch.scalar_insts", 0)) > 0


def test_timing_fallback_metrics_vocabulary(tiny_gpu):
    """An incompatible engine runs scalar under the pinned
    ``timing.scalar_fallback`` span with a reason counter."""
    from repro.reliability.watchdog import WatchdogConfig

    with scoped_bus() as bus:
        engine = DetailedEngine(make_vecadd(n_warps=4), tiny_gpu,
                                watchdog=WatchdogConfig(max_events=10**9))
        engine.run()
        counters = bus.metrics.snapshot()["counters"]
        phases = bus.metrics.phases()
    assert "timing.scalar_fallback" in phases
    assert "timing.batch" not in phases
    assert counters["engine.batch.fallback_runs"] == 1
    assert counters["engine.batch.fallback.watchdog"] == 1


def test_disabled_timing_batching_runs_under_plain_timing_span(tiny_gpu):
    from repro.timing import scoped_timing_batching

    with scoped_bus() as bus:
        with scoped_timing_batching(False):
            DetailedEngine(make_vecadd(n_warps=4), tiny_gpu).run()
        phases = bus.metrics.phases()
        counters = bus.metrics.snapshot()["counters"]
    assert set(phases) == {"functional", "timing"}
    assert "engine.batch.runs" not in counters

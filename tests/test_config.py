"""GPU configuration presets (Table 1) and Photon config validation."""

import pytest

from repro.config import GpuConfig, MI100, R9_NANO, preset
from repro.core import PhotonConfig
from repro.errors import ConfigError


def test_table1_r9nano():
    assert R9_NANO.n_cu == 64
    assert R9_NANO.clock_ghz == 1.0
    assert R9_NANO.l1v.size_bytes == 16 * 1024 and R9_NANO.l1v.assoc == 4
    assert R9_NANO.l1i.size_bytes == 32 * 1024
    assert R9_NANO.l2.size_bytes == 256 * 1024 and R9_NANO.l2.assoc == 16
    assert R9_NANO.l2_banks == 8
    assert R9_NANO.dram_gb == 4


def test_table1_mi100():
    assert MI100.n_cu == 120
    assert MI100.l2_banks == 32
    # 8MB total L2 across 32 banks (Table 1)
    assert MI100.l2.size_bytes * MI100.l2_banks == 8 * 1024 * 1024
    assert MI100.dram_gb == 32


def test_preset_lookup():
    assert preset("r9nano") is R9_NANO
    assert preset("MI100") is MI100
    with pytest.raises(ConfigError):
        preset("h100")


def test_cache_geometry_sets():
    assert R9_NANO.l1v.n_sets == 16 * 1024 // (4 * 64)


def test_scaled_preserves_per_cu_geometry():
    small = R9_NANO.scaled(8)
    assert small.n_cu == 8
    assert small.l1v == R9_NANO.l1v
    assert small.l2 == R9_NANO.l2
    assert small.l2_banks >= 4  # bandwidth floor
    assert small.dram_channels >= 4


def test_scaled_handles_awkward_cu_counts():
    cfg = MI100.scaled(15)
    assert cfg.n_cu == 15
    assert cfg.n_cu % cfg.cus_per_l1_group == 0


def test_invalid_configs_rejected():
    import dataclasses

    with pytest.raises(ConfigError):
        dataclasses.replace(R9_NANO, n_cu=0)
    with pytest.raises(ConfigError):
        dataclasses.replace(R9_NANO, n_cu=6)  # not divisible by group


def test_photon_config_defaults_match_paper():
    cfg = PhotonConfig()
    assert cfg.sample_fraction == 0.01
    assert cfg.bb_window == 2048
    assert cfg.warp_window == 1024
    assert cfg.delta == 0.03
    assert cfg.stable_bb_rate == 0.95
    assert cfg.dominant_warp_rate == 0.95
    assert cfg.bbv_dim == 16


def test_photon_config_validation():
    with pytest.raises(ConfigError):
        PhotonConfig(sample_fraction=0.0)
    with pytest.raises(ConfigError):
        PhotonConfig(bb_window=1)
    with pytest.raises(ConfigError):
        PhotonConfig(delta=1.5)
    with pytest.raises(ConfigError):
        PhotonConfig(stable_bb_rate=0.0)
    with pytest.raises(ConfigError):
        PhotonConfig(bbv_dim=0)


@pytest.mark.parametrize("field,value", [
    ("min_sample_warps", 0),
    ("warp_window", 1),
    ("bb_retire_gate_fraction", 1.5),
    ("bb_retire_gate_fraction", -0.1),
    ("mean_delta", 0.0),
    ("mean_delta", 1.0),
    ("dominant_warp_rate", 1.5),
    ("gpu_bbv_clusters", 0),
    ("kernel_distance", -0.1),
    ("rare_bb_min_samples", 0),
])
def test_photon_config_errors_name_the_field(field, value):
    with pytest.raises(ConfigError, match=field):
        PhotonConfig(**{field: value})


def test_photon_config_boundary_values_accepted():
    PhotonConfig(sample_fraction=1.0, bb_retire_gate_fraction=0.0,
                 mean_delta=None, kernel_distance=0.0,
                 min_sample_warps=1, rare_bb_min_samples=1)


def test_with_levels():
    cfg = PhotonConfig().with_levels(kernel=True, warp=False, bb=False)
    assert cfg.enable_kernel_sampling
    assert not cfg.enable_warp_sampling
    assert not cfg.enable_bb_sampling
    # original untouched (frozen dataclass)
    assert PhotonConfig().enable_warp_sampling

"""PKA baseline: profiling, IPC stability monitor, kernel clustering."""

import dataclasses

import numpy as np
import pytest

from repro.baselines import PKA, PkaConfig, feature_distance
from repro.baselines.pka import _KernelFeatures
from repro.errors import ConfigError
from repro.functional import Application
from repro.timing import simulate_kernel_detailed

from conftest import make_loop_kernel, make_vecadd


def test_config_validation():
    with pytest.raises(ConfigError):
        PkaConfig(s=0.0)
    with pytest.raises(ConfigError):
        PkaConfig(window_cycles=100.0, bucket_cycles=100.0)
    assert PkaConfig().history_buckets == 30


def test_profile_counts_every_warp(tiny_gpu):
    pka = PKA(tiny_gpu)
    kernel = make_vecadd(n_warps=10)
    features = pka._profile(kernel)
    assert features.total_insts == 10 * 9
    assert features.n_warps == 10
    assert features.mix.sum() == pytest.approx(1.0)


def test_feature_distance_symmetry():
    a = _KernelFeatures(mix=np.array([0.5, 0.5]), n_warps=1, total_insts=1)
    b = _KernelFeatures(mix=np.array([1.0, 0.0]), n_warps=1, total_insts=1)
    assert feature_distance(a, b) == feature_distance(b, a)
    assert feature_distance(a, a) == 0.0


def test_small_kernel_runs_full(tiny_gpu):
    kernel = make_vecadd(n_warps=8)
    result = PKA(tiny_gpu).simulate_kernel(kernel)
    assert result.mode == "pka-full"
    full = simulate_kernel_detailed(make_vecadd(n_warps=8), tiny_gpu)
    assert result.sim_time == full.sim_time


def test_ipc_extrapolation_on_long_kernel(tiny_gpu):
    config = PkaConfig(window_cycles=500.0, bucket_cycles=50.0)
    kernel = make_loop_kernel(n_warps=600, trips_of=lambda w: 8)
    result = PKA(tiny_gpu, config).simulate_kernel(kernel)
    assert result.mode == "pka-ipc"
    assert result.detail_insts < result.n_insts
    full = simulate_kernel_detailed(
        make_loop_kernel(n_warps=600, trips_of=lambda w: 8), tiny_gpu)
    err = abs(full.sim_time - result.sim_time) / full.sim_time
    assert err < 0.5  # extrapolation, not exactness


def test_kernel_clustering_skips_repeats(tiny_gpu):
    pka = PKA(tiny_gpu)
    app = Application("repeat")
    app.launch(make_vecadd(n_warps=16))
    app.launch(make_vecadd(n_warps=16))
    result = pka.simulate_app(app)
    assert result.kernels[0].mode.startswith("pka")
    assert result.kernels[1].mode == "pka-kernel"
    assert result.kernels[1].detail_insts == 0
    assert result.kernels[1].sim_time == pytest.approx(
        result.kernels[0].sim_time)


def test_kernel_clustering_scales_by_instruction_ratio(tiny_gpu):
    pka = PKA(tiny_gpu)
    app = Application("scaled")
    app.launch(make_vecadd(n_warps=16))
    app.launch(make_vecadd(n_warps=32))  # same mix, 2x the instructions
    result = pka.simulate_app(app)
    assert result.kernels[1].mode == "pka-kernel"
    assert result.kernels[1].sim_time == pytest.approx(
        2.0 * result.kernels[0].sim_time)


def test_clustering_can_misgroup_by_feature_counts(tiny_gpu):
    """The paper's critique: different kernels with similar instruction
    mixes cluster together under PKA (Observation 5)."""
    pka = PKA(tiny_gpu, PkaConfig(kernel_distance=2.0))  # huge radius
    app = Application("confusable")
    app.launch(make_loop_kernel(n_warps=32, trips_of=lambda w: 4))
    app.launch(make_loop_kernel(n_warps=32, trips_of=lambda w: 4,
                                wg_size=4))
    result = pka.simulate_app(app)
    assert result.kernels[1].mode == "pka-kernel"


def test_clustering_disabled(tiny_gpu):
    config = PkaConfig(enable_kernel_clustering=False)
    pka = PKA(tiny_gpu, config)
    app = Application("repeat")
    app.launch(make_vecadd(n_warps=16))
    app.launch(make_vecadd(n_warps=16))
    result = pka.simulate_app(app)
    assert all(k.mode != "pka-kernel" for k in result.kernels)

"""DuraSweep journal: record integrity, valid-prefix scan, quarantine.

Property under test: :func:`scan_journal` never raises and always
replays exactly the longest valid prefix — proven exhaustively by
truncating a real journal at *every* byte boundary.  The quarantine
path must preserve the torn tail (``journal.quarantined``) and truncate
the log back to its valid prefix before any new append.
"""

import json

import pytest

from repro.errors import ConfigError, SamplingError
from repro.parallel import (
    JOURNAL_NAME,
    SweepJournal,
    SweepTask,
    TaskOutcome,
    plan_sweep,
    scan_journal,
)
from repro.parallel.journal import (
    QUARANTINE_NAME,
    REC_DONE,
    REC_MERGED,
    REC_PLAN,
    decode_line,
    encode_record,
)


def _tiny_plan(**kwargs):
    return plan_sweep(["fir"], sizes=(64,), methods=("photon",),
                      seed=7, **kwargs)


def _outcome(index, ok=True):
    return TaskOutcome(index=index, workload="fir", size=64,
                       method="photon",
                       status="ok" if ok else "error",
                       error_class="" if ok else "InjectedFault",
                       sim_time=123.0, n_insts=10, mode="full")


def _journal_bytes(tmp_path, n_outcomes=2):
    """A real small journal's raw bytes (plan + scheduled/done pairs)."""
    run_dir = tmp_path / "run"
    journal = SweepJournal.create(run_dir, _tiny_plan(),
                                  options={"on_conflict": "keep"})
    tasks = _tiny_plan()
    for task in tasks[:n_outcomes]:
        journal.task_scheduled(task)
        journal.task_outcome(_outcome(task.index))
    journal.merged({"tasks": 0, "bundles": 0, "warps_added": 0,
                    "quarantined": 0})
    journal.close()
    return run_dir, (run_dir / JOURNAL_NAME).read_bytes()


# ------------------------------------------------------------ records


def test_encode_decode_round_trip():
    record = {"rec": REC_DONE, "index": 3,
              "outcome": {"index": 3, "status": "ok"}}
    line = encode_record(record)
    assert line.endswith(b"\n")
    decoded = decode_line(line[:-1])
    assert decoded is not None
    assert decoded["rec"] == REC_DONE
    assert decoded["index"] == 3
    assert "checksum" in decoded


@pytest.mark.parametrize("mutation", [
    lambda line: line[:-5],                      # torn
    lambda line: line.replace(b'"index":3', b'"index":4'),  # bit rot
    lambda line: b"not json at all",
    lambda line: b'"just a string"',             # JSON, not an object
    lambda line: b"",
])
def test_decode_rejects_damage(mutation):
    line = encode_record({"rec": REC_DONE, "index": 3})[:-1]
    assert decode_line(line) is not None
    assert decode_line(mutation(line)) is None


# ----------------------------------------------- valid-prefix scanning


def test_scan_missing_file_is_empty(tmp_path):
    scan = scan_journal(tmp_path / "nope.jsonl")
    assert scan.records == [] and scan.valid_bytes == 0
    assert not scan.complete


def test_scan_truncated_at_every_byte_boundary(tmp_path):
    """Exhaustive torn-tail property: any prefix scans cleanly."""
    _run_dir, raw = _journal_bytes(tmp_path)
    # record boundaries = offsets just past each newline
    boundaries = [0]
    offset = 0
    while True:
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break
        offset = newline + 1
        boundaries.append(offset)
    full = scan_journal(_run_dir / JOURNAL_NAME)
    assert full.valid_bytes == len(raw)
    assert full.complete and full.quarantined_bytes == 0

    for cut in range(len(raw) + 1):
        (tmp_path / "cut.jsonl").write_bytes(raw[:cut])
        scan = scan_journal(tmp_path / "cut.jsonl")
        # the scan recovers the longest whole-record prefix...
        expected_valid = max(b for b in boundaries if b <= cut)
        assert scan.valid_bytes == expected_valid, f"cut at {cut}"
        # ...quarantines exactly the rest...
        assert scan.quarantined_bytes == cut - expected_valid
        # ...and every surviving record still decodes
        assert len(scan.records) == boundaries.index(expected_valid)


def test_scan_corrupt_middle_line_stops_prefix(tmp_path):
    _run_dir, raw = _journal_bytes(tmp_path)
    lines = raw.splitlines(keepends=True)
    assert len(lines) >= 4
    corrupted = lines[1][:10] + b"X" + lines[1][11:]
    (tmp_path / "bad.jsonl").write_bytes(
        lines[0] + corrupted + b"".join(lines[2:]))
    scan = scan_journal(tmp_path / "bad.jsonl")
    # everything from the corrupt line on is quarantined, even the
    # structurally fine records behind it — prefix semantics
    assert len(scan.records) == 1
    assert scan.records[0]["rec"] == REC_PLAN
    assert scan.quarantined_lines == len(lines) - 1


def test_scan_outcomes_last_record_wins(tmp_path):
    run_dir = tmp_path / "run"
    journal = SweepJournal.create(run_dir, _tiny_plan())
    journal.task_outcome(_outcome(1, ok=False))
    journal.task_outcome(_outcome(1, ok=True))  # re-run after rebuild
    journal.close()
    scan = scan_journal(run_dir / JOURNAL_NAME)
    outcomes = scan.outcomes()
    assert set(outcomes) == {1}
    assert outcomes[1].ok


def test_scan_tasks_round_trip(tmp_path):
    run_dir, _raw = _journal_bytes(tmp_path)
    scan = scan_journal(run_dir / JOURNAL_NAME)
    tasks = scan.tasks()
    assert [t.to_dict() for t in tasks] == \
        [t.to_dict() for t in _tiny_plan()]
    assert all(isinstance(t, SweepTask) for t in tasks)


# ------------------------------------------------------ create/resume


def test_create_refuses_existing_journal(tmp_path):
    run_dir = tmp_path / "run"
    SweepJournal.create(run_dir, _tiny_plan()).close()
    with pytest.raises(ConfigError, match="resume it with --resume"):
        SweepJournal.create(run_dir, _tiny_plan())


def test_resume_quarantines_and_truncates_tail(tmp_path):
    run_dir, raw = _journal_bytes(tmp_path)
    journal_path = run_dir / JOURNAL_NAME
    torn = raw + b'{"rec":"done","ind'  # crash mid-append
    journal_path.write_bytes(torn)

    journal, scan = SweepJournal.resume(run_dir)
    journal.close()
    assert scan.quarantined_bytes == len(torn) - len(raw)
    assert scan.quarantined_lines == 1
    # the tail was preserved aside and the journal truncated back
    assert (run_dir / QUARANTINE_NAME).read_bytes() == \
        b'{"rec":"done","ind'
    assert journal_path.read_bytes() == raw


def test_resume_requires_a_plan_record(tmp_path):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    (run_dir / JOURNAL_NAME).write_bytes(b"garbage\n")
    with pytest.raises(SamplingError, match="no valid plan record"):
        SweepJournal.resume(run_dir)
    with pytest.raises(SamplingError, match="no valid plan record"):
        SweepJournal.resume(tmp_path / "missing")


def test_resume_rejects_unknown_version(tmp_path):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    record = {"rec": REC_PLAN, "version": 99, "tasks": [],
              "options": {}}
    (run_dir / JOURNAL_NAME).write_bytes(encode_record(record))
    with pytest.raises(SamplingError, match="unsupported journal"):
        SweepJournal.resume(run_dir)


def test_appends_after_resume_extend_the_valid_prefix(tmp_path):
    run_dir, raw = _journal_bytes(tmp_path)
    (run_dir / JOURNAL_NAME).write_bytes(raw + b"torn tail")
    journal, _scan = SweepJournal.resume(run_dir)
    journal.append({"rec": REC_MERGED, "trace_merge": None})
    journal.close()
    scan = scan_journal(run_dir / JOURNAL_NAME)
    assert scan.quarantined_bytes == 0
    assert scan.records[-1]["rec"] == REC_MERGED


def test_journal_records_are_canonical_json(tmp_path):
    _run_dir, raw = _journal_bytes(tmp_path)
    for line in raw.splitlines():
        record = json.loads(line)
        recoded = json.dumps(record, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        assert recoded == line

"""Sweep task model: serialization, execution, failure staging."""

import pytest

from repro.errors import BudgetExceeded, ConfigError, WorkloadError
from repro.parallel.tasks import (
    FULL_METHOD,
    SweepTask,
    TaskOutcome,
    run_task,
)
from repro.reliability.retry import DEFAULT_RETRY, NO_RETRY, RetryPolicy
from repro.reliability.watchdog import WatchdogConfig


def test_task_round_trips_through_dict():
    task = SweepTask(index=3, workload="relu", size=512, method="photon",
                     gpu="mi100", seed=11,
                     watchdog=WatchdogConfig(max_events=1000),
                     retry=DEFAULT_RETRY)
    clone = SweepTask.from_dict(task.to_dict())
    assert clone == task


def test_task_dict_is_json_safe():
    import json

    task = SweepTask(index=0, workload="fir", size=128, method="pka",
                     retry=DEFAULT_RETRY)
    payload = json.dumps(task.to_dict(), allow_nan=False)
    assert SweepTask.from_dict(json.loads(payload)) == task


def test_task_from_dict_rejects_unknown_transient():
    task = SweepTask(index=0, workload="relu", size=64, method="photon")
    data = task.to_dict()
    data["retry"]["transient"] = ["NotAnError"]
    with pytest.raises(ConfigError):
        SweepTask.from_dict(data)


def test_run_task_full_and_photon():
    full = run_task(SweepTask(index=0, workload="relu", size=128,
                              method=FULL_METHOD))
    assert full.ok and full.mode == "full"
    assert full.sim_time > 0 and full.n_insts > 0
    assert full.store_payload is None  # baselines carry no store

    photon = run_task(SweepTask(index=1, workload="relu", size=128,
                                method="photon"))
    assert photon.ok
    assert photon.store_payload is not None  # analysed at least 1 kernel
    assert photon.kerneldb_payload is not None
    result = photon.to_kernel_result()
    assert result.sim_time == photon.sim_time
    assert result.n_insts == photon.n_insts


def test_run_task_build_failure_is_staged():
    out = run_task(SweepTask(index=0, workload="relu", size=-1,
                             method=FULL_METHOD))
    assert not out.ok
    assert out.stage == "build"
    assert out.error_class == "WorkloadError"


def test_run_task_watchdog_trip_is_run_stage():
    out = run_task(SweepTask(index=0, workload="relu", size=128,
                             method=FULL_METHOD,
                             watchdog=WatchdogConfig(max_events=10)))
    assert not out.ok
    assert out.stage == "run"
    assert out.error_class == "BudgetExceeded"


def test_run_task_unknown_method_raises():
    # a typo is a caller bug, not a sweep casualty
    with pytest.raises(WorkloadError):
        run_task(SweepTask(index=0, workload="relu", size=64,
                           method="phtoon"))


def test_outcome_round_trips_through_dict():
    out = run_task(SweepTask(index=2, workload="fir", size=128,
                             method="photon"))
    clone = TaskOutcome.from_dict(out.to_dict())
    assert clone == out


def test_retry_reports_attempts():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 2:
            raise BudgetExceeded("transient")
        return "ok"

    value, attempts = RetryPolicy(max_attempts=3).run_with_attempts(flaky)
    assert value == "ok" and attempts == 2
    value, attempts = NO_RETRY.run_with_attempts(lambda: 5)
    assert value == 5 and attempts == 1


def test_watchdog_per_task_splits_deadline():
    config = WatchdogConfig(deadline_seconds=60.0, max_events=99)
    per = config.per_task(n_tasks=12, jobs=4)  # 3 tasks per worker
    assert per.deadline_seconds == pytest.approx(20.0)
    assert per.max_events == 99  # per-run budgets pass through
    # no deadline: config passes through untouched
    assert WatchdogConfig(max_events=5).per_task(10, 2).deadline_seconds is None
    with pytest.raises(ConfigError):
        config.per_task(0)
    with pytest.raises(ConfigError):
        config.per_task(4, jobs=0)

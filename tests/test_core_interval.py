"""Interval model for rare basic blocks (Figure 9)."""

import pytest

from repro.core import IntervalModel, default_latency
from repro.isa import KernelBuilder, MemAddr, Opcode, s, v


def straightline_program():
    b = KernelBuilder("p")
    b.v_lane(v(0))  # independent
    b.v_mov(v(1), 1.0)  # independent
    b.v_add(v(2), v(0), v(1))  # depends on both
    b.v_mul(v(3), v(2), 2.0)  # depends on v2
    b.s_endpgm()
    return b.build()


def test_default_latencies_by_class(tiny_gpu):
    assert default_latency(Opcode.V_ADD, tiny_gpu) == tiny_gpu.vector_alu_lat
    assert default_latency(Opcode.S_ADD, tiny_gpu) == tiny_gpu.scalar_alu_lat
    assert default_latency(Opcode.V_LOAD, tiny_gpu) == tiny_gpu.l1_lat
    assert default_latency(Opcode.S_LOAD, tiny_gpu) == tiny_gpu.l1_lat
    assert default_latency(Opcode.DS_READ, tiny_gpu) == tiny_gpu.lds_lat
    assert default_latency(Opcode.S_BRANCH, tiny_gpu) == tiny_gpu.branch_lat


def test_dependency_chain_lengthens_block(tiny_gpu):
    prog = straightline_program()
    model = IntervalModel(tiny_gpu)
    block = prog.blocks[0]
    time = model.bb_time(prog, block)
    lat = tiny_gpu.vector_alu_lat
    # v_add waits for v_mov/v_lane; v_mul waits for v_add:
    # issue0=0 ret=lat; add issues at lat, ret 2lat; mul at 2lat, ret 3lat
    assert time >= 3 * lat


def test_independent_ops_pipeline(tiny_gpu):
    b = KernelBuilder("p")
    for i in range(4):
        b.v_mov(v(i), float(i))  # fully independent
    b.s_endpgm()
    prog = b.build()
    time = IntervalModel(tiny_gpu).bb_time(prog, prog.blocks[0])
    # pipelined: last issues at 4 (endpgm block included), plus one latency
    assert time <= 4 * tiny_gpu.issue_interval + tiny_gpu.vector_alu_lat + 1


def test_observed_latency_table_overrides_defaults(tiny_gpu):
    prog = straightline_program()
    block = prog.blocks[0]
    slow = IntervalModel(tiny_gpu, {Opcode.V_ADD.value: 500.0})
    fast = IntervalModel(tiny_gpu)
    assert slow.bb_time(prog, block) > fast.bb_time(prog, block)


def test_update_merges_latencies(tiny_gpu):
    model = IntervalModel(tiny_gpu)
    model.update({Opcode.V_ADD.value: 7.0})
    model.update({Opcode.V_MUL.value: 9.0})
    assert model.latency_table[Opcode.V_ADD.value] == 7.0
    assert model.latency_table[Opcode.V_MUL.value] == 9.0


def test_memory_ops_use_cache_latency_defaults(tiny_gpu):
    b = KernelBuilder("p")
    b.v_lane(v(0))
    b.v_load(v(1), MemAddr(base=s(4), index=v(0)))
    b.s_waitcnt()
    b.v_add(v(2), v(1), 1.0)
    b.s_endpgm()
    prog = b.build()
    time = IntervalModel(tiny_gpu).bb_time(prog, prog.blocks[0])
    assert time >= tiny_gpu.l1_lat  # load on the critical path


def test_interval_time_close_to_detailed_single_warp(tiny_gpu):
    """For one lone warp the interval model should be within ~2x of the
    engine (no contention)."""
    from repro.timing import DetailedEngine

    from conftest import make_vecadd

    kernel = make_vecadd(n_warps=1)
    res = DetailedEngine(kernel, tiny_gpu).run()
    detailed = res.end_time
    prog = kernel.program
    model = IntervalModel(tiny_gpu)
    predicted = sum(model.bb_time(prog, blk) for blk in prog.blocks)
    assert predicted == pytest.approx(detailed, rel=1.0)
    assert predicted > 0

"""Unit tests for repro.reliability: watchdogs, fault plans, retries."""

import pytest

from repro.errors import (
    BudgetExceeded,
    ConfigError,
    InjectedFault,
    ReproError,
    SamplingError,
    SimulationStalled,
)
from repro.reliability import (
    DEFAULT_RETRY,
    FALLBACK_CHAIN,
    FallbackEvent,
    FaultPlan,
    FaultSpec,
    NO_RETRY,
    RetryPolicy,
    WatchdogConfig,
)


# -- WatchdogConfig / Watchdog ------------------------------------------------

def test_error_taxonomy():
    assert issubclass(BudgetExceeded, ReproError)
    assert issubclass(SimulationStalled, ReproError)
    # injected faults are recoverable by the degradation ladder
    assert issubclass(InjectedFault, SamplingError)


def test_watchdog_config_validation():
    with pytest.raises(ConfigError, match="max_events"):
        WatchdogConfig(max_events=0)
    with pytest.raises(ConfigError, match="deadline_seconds"):
        WatchdogConfig(deadline_seconds=-1.0)
    with pytest.raises(ConfigError, match="stall_instructions"):
        WatchdogConfig(stall_instructions=-5)
    with pytest.raises(ConfigError, match="check_interval"):
        WatchdogConfig(check_interval=0)


def test_unconfigured_watchdog_is_unarmed():
    wd = WatchdogConfig().for_engine("e")
    assert not wd.armed
    wd.tick(10**6)  # never raises


def test_budget_trips_exactly_past_limit():
    wd = WatchdogConfig(max_events=5).for_engine("e")
    assert wd.armed
    wd.tick(5)
    with pytest.raises(BudgetExceeded, match="e: exceeded budget"):
        wd.tick()


def test_stall_resets_on_progress():
    wd = WatchdogConfig(stall_events=10).for_engine("e")
    for _ in range(5):
        wd.tick(9)
        wd.note_progress()
    wd.tick(10)
    with pytest.raises(SimulationStalled):
        wd.tick()


def test_deadline_polled_on_interval():
    wd = WatchdogConfig(deadline_seconds=1e-6,
                        check_interval=100).for_executor("x")
    wd.tick(99)  # below the poll interval: deadline not yet checked
    with pytest.raises(BudgetExceeded, match="deadline"):
        wd.tick(100)


def test_engine_and_executor_use_their_own_budgets():
    cfg = WatchdogConfig(max_events=1, max_instructions=50)
    assert cfg.for_engine("e").budget == 1
    assert cfg.for_executor("x").budget == 50
    assert cfg.for_executor("x").unit == "instructions"


# -- FaultSpec / FaultPlan ----------------------------------------------------

def test_fault_fires_on_nth_arming():
    plan = FaultPlan(FaultSpec(site="s", at=3))
    plan.arm("s")
    plan.arm("s")
    with pytest.raises(InjectedFault):
        plan.arm("s")
    plan.arm("s")  # window of one: exhausted again
    assert plan.fired == [("s", "InjectedFault", None)]


def test_fault_count_window():
    plan = FaultPlan(FaultSpec(site="s", count=2))
    for _ in range(2):
        with pytest.raises(InjectedFault):
            plan.arm("s")
    plan.arm("s")
    assert len(plan.fired) == 2


def test_fault_kernel_filter_and_level_attribution():
    plan = FaultPlan(FaultSpec(site="s", kernel="k1", level="warp"))
    plan.arm("s", kernel="other")  # no match
    with pytest.raises(InjectedFault) as info:
        plan.arm("s", kernel="k1", level="bb")
    assert info.value.photon_level == "warp"  # spec override wins


def test_fault_site_level_default():
    plan = FaultPlan(FaultSpec(site="s"))
    with pytest.raises(InjectedFault) as info:
        plan.arm("s", level="kernel")
    assert info.value.photon_level == "kernel"


def test_fault_custom_error_and_message():
    plan = FaultPlan()
    plan.add(FaultSpec(site="s", error=BudgetExceeded, message="boom"))
    with pytest.raises(BudgetExceeded, match="boom"):
        plan.arm("s")


# -- RetryPolicy --------------------------------------------------------------

def test_retry_retries_transient_only():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) == 1:
            raise BudgetExceeded("transient")
        return "ok"

    assert RetryPolicy(max_attempts=2).run(flaky) == "ok"
    assert len(calls) == 2


def test_retry_gives_up_after_max_attempts():
    def always():
        raise SimulationStalled("stuck")

    with pytest.raises(SimulationStalled):
        RetryPolicy(max_attempts=3).run(always)


def test_retry_does_not_mask_nontransient():
    calls = []

    def bad():
        calls.append(1)
        raise SamplingError("logic bug")

    with pytest.raises(SamplingError):
        RetryPolicy(max_attempts=5).run(bad)
    assert len(calls) == 1


def test_retry_constants():
    assert NO_RETRY.max_attempts == 1
    assert DEFAULT_RETRY.max_attempts == 2
    with pytest.raises(ConfigError):
        RetryPolicy(max_attempts=0)


# -- ledger -------------------------------------------------------------------

def test_fallback_chain_order():
    assert FALLBACK_CHAIN == ("bb", "warp", "kernel", "full")


def test_fallback_event_serialises():
    event = FallbackEvent(kernel="k", from_level="bb", to_level="warp",
                          error="InjectedFault", message="m")
    assert event.to_dict() == {
        "kernel": "k", "from_level": "bb", "to_level": "warp",
        "error": "InjectedFault", "message": "m",
    }

"""Kernel database lookups (kernel-sampling, Figure 12)."""

import numpy as np
import pytest

from repro.core import KernelDB, KernelRecord


def record(name, vec, n_warps, insts=1000.0, sample=100, time=500.0):
    return KernelRecord(name=name, gpu_bbv=np.asarray(vec, dtype=float),
                        n_warps=n_warps, total_insts=insts,
                        sample_insts=sample, sim_time=time)


def test_empty_db_misses():
    db = KernelDB(distance_threshold=0.1, n_cu=8)
    assert db.lookup(np.array([1.0, 0.0]), 100, 10) is None
    assert len(db) == 0


def test_exact_match_predicts():
    db = KernelDB(0.1, n_cu=8)
    db.add(record("a", [1.0, 0.0], n_warps=100, insts=1000, sample=100,
                  time=500))
    pred = db.lookup(np.array([1.0, 0.0]), 100, 200)
    assert pred is not None
    assert pred.matched.name == "a"
    # insts extrapolated through the sample ratio: 1000 * 200/100
    assert pred.predicted_insts == pytest.approx(2000.0)
    # time = insts / ipc, ipc = 1000/500 = 2
    assert pred.predicted_time == pytest.approx(1000.0)


def test_distance_threshold_excludes():
    db = KernelDB(0.05, n_cu=8)
    db.add(record("a", [1.0, 0.0], 100))
    assert db.lookup(np.array([0.9, 0.1]), 100, 100) is None


def test_closest_warp_count_wins():
    db = KernelDB(0.1, n_cu=8)
    db.add(record("far", [1.0, 0.0], n_warps=1000, time=100.0))
    db.add(record("near", [1.0, 0.0], n_warps=130, time=900.0))
    pred = db.lookup(np.array([1.0, 0.0]), 128, 100)
    assert pred.matched.name == "near"


def test_small_kernels_require_exact_warp_count():
    """Paper: kernels with fewer warps than GPU cores must match the
    warp count exactly (different resource competition)."""
    db = KernelDB(0.1, n_cu=64)
    db.add(record("small", [1.0, 0.0], n_warps=32))
    assert db.lookup(np.array([1.0, 0.0]), 33, 100) is None
    assert db.lookup(np.array([1.0, 0.0]), 32, 100) is not None
    # and symmetrically: a big query cannot match a small record
    assert db.lookup(np.array([1.0, 0.0]), 128, 100) is None


def test_shape_mismatch_skipped():
    db = KernelDB(0.1, n_cu=8)
    db.add(record("a", [1.0, 0.0, 0.0], 100))
    assert db.lookup(np.array([1.0, 0.0]), 100, 100) is None


def test_zero_ipc_record_never_matches():
    db = KernelDB(0.1, n_cu=8)
    db.add(record("broken", [1.0, 0.0], 100, time=0.0))
    assert db.lookup(np.array([1.0, 0.0]), 100, 100) is None


def test_multiple_candidates_distance_gate_first():
    db = KernelDB(0.1, n_cu=8)
    db.add(record("similar", [1.0, 0.0], n_warps=500))
    db.add(record("different", [0.0, 1.0], n_warps=100))
    pred = db.lookup(np.array([1.0, 0.0]), 100, 100)
    # "different" has the closer warp count but fails the distance gate
    assert pred.matched.name == "similar"

"""PhotonServe building blocks: quotas, queue, dedup, protocol.

No sockets here — these are the pure units (token buckets with a fake
clock, the admission queue raced against drain, single-flight
coalescing with cancelled waiters) that the app-level and e2e suites
build on.  No pytest-asyncio dependency: each async test body runs
under its own ``asyncio.run``.
"""

import asyncio
import json

import pytest

from repro.errors import ConfigError
from repro.serve import (
    AdmissionQueue,
    ProtocolError,
    SingleFlight,
    TenantQuotas,
    TokenBucket,
    deterministic_result,
    normalize_request,
    request_key,
)
from repro.serve.lifecycle import DrainController, read_pending


# -- token buckets ----------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_token_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
    retry = bucket.try_acquire()
    assert retry == pytest.approx(0.5)  # 1 token at 2/s
    clock.advance(0.5)
    assert bucket.try_acquire() == 0.0


def test_token_bucket_disabled_when_rate_zero():
    bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
    assert all(bucket.try_acquire() == 0.0 for _ in range(100))


def test_tenant_quotas_are_isolated():
    """One greedy tenant exhausts only its own bucket."""
    clock = FakeClock()
    quotas = TenantQuotas(rate=1.0, burst=2.0, clock=clock)
    assert quotas.admit("greedy")[0]
    assert quotas.admit("greedy")[0]
    admitted, retry_after, reason = quotas.admit("greedy")
    assert not admitted and retry_after > 0
    assert reason == "tenant rate limit exceeded"
    assert quotas.rejected_rate == 1
    # a different tenant is untouched
    assert quotas.admit("polite")[0]


def test_tenant_max_inflight_and_release():
    quotas = TenantQuotas(max_inflight=2, clock=FakeClock())
    assert quotas.admit("t")[0] and quotas.admit("t")[0]
    admitted, _retry, reason = quotas.admit("t")
    assert not admitted and reason == "tenant max-inflight exceeded"
    quotas.release("t")
    assert quotas.admit("t")[0]
    assert quotas.inflight("other") == 0


# -- admission queue --------------------------------------------------------

def test_queue_full_and_retry_after_floor():
    async def body():
        queue = AdmissionQueue(limit=2, slots=1)
        assert not queue.full()
        queue.waiting = 2
        assert not queue.full()      # a free slot always admits
        assert await queue.acquire()  # take the slot
        assert queue.full()
        assert queue.retry_after() >= 1  # whole seconds, never 0
        queue.waiting = 0
        assert not queue.full()      # waiting room has space again

    asyncio.run(body())


def test_queue_retry_after_tracks_observed_wall():
    queue = AdmissionQueue(limit=10, slots=1)
    for _ in range(50):
        queue.observe(10.0)  # EMA converges towards 10s tasks
    queue.waiting = 4
    assert queue.retry_after() >= 40


def test_queue_rejects_bad_config():
    with pytest.raises(ValueError):
        AdmissionQueue(limit=-1, slots=1)
    with pytest.raises(ValueError):
        AdmissionQueue(limit=1, slots=0)


def test_queue_acquire_release_counts():
    async def body():
        queue = AdmissionQueue(limit=4, slots=2)
        assert await queue.acquire()
        assert await queue.acquire()
        assert queue.running == 2 and queue.waiting == 0
        queue.release()
        queue.release()
        assert queue.running == 0

    asyncio.run(body())


def test_queue_drain_displaces_waiter():
    """A queued request loses its slot wait when drain begins; a
    request already holding a slot is unaffected."""
    async def body():
        queue = AdmissionQueue(limit=4, slots=1)
        draining = asyncio.Event()
        assert await queue.acquire(draining)  # takes the only slot
        waiter = asyncio.ensure_future(queue.acquire(draining))
        await asyncio.sleep(0.01)
        assert queue.waiting == 1
        draining.set()
        assert await waiter is False          # displaced, no slot held
        assert queue.waiting == 0 and queue.running == 1
        queue.release()
        # post-drain acquires refuse immediately
        assert await queue.acquire(draining) is False

    asyncio.run(body())


def test_queue_cancelled_waiter_leaks_no_slot():
    async def body():
        queue = AdmissionQueue(limit=4, slots=1)
        assert await queue.acquire()
        waiter = asyncio.ensure_future(queue.acquire())
        await asyncio.sleep(0.01)
        waiter.cancel()
        with pytest.raises(asyncio.CancelledError):
            await waiter
        queue.release()
        assert await queue.acquire()  # the slot is still grantable
        assert queue.waiting == 0

    asyncio.run(body())


# -- single-flight dedup ----------------------------------------------------

def test_single_flight_coalesces_identical_keys():
    """N concurrent same-key callers → exactly one execution, every
    caller handed the *same* result object."""
    async def body():
        flights = SingleFlight()
        executions = []

        async def thunk():
            executions.append(1)
            await asyncio.sleep(0.02)
            return {"value": 42}

        results = await asyncio.gather(
            *[flights.run("k", thunk) for _ in range(8)])
        assert len(executions) == 1
        values = [result for result, _shared in results]
        assert all(v is values[0] for v in values)
        assert sum(1 for _r, shared in results if shared) == 7
        assert flights.coalesced == 7
        assert len(flights) == 0  # registry cleaned up

    asyncio.run(body())


def test_single_flight_different_keys_run_independently():
    async def body():
        flights = SingleFlight()
        ran = []

        def make(key):
            async def thunk():
                ran.append(key)
                return key
            return thunk

        results = await asyncio.gather(
            flights.run("a", make("a")), flights.run("b", make("b")))
        assert sorted(ran) == ["a", "b"]
        assert [shared for _r, shared in results] == [False, False]

    asyncio.run(body())


def test_single_flight_cancelled_waiter_keeps_execution_alive():
    """A disconnecting client cancels only its own wait; the shared
    execution completes and serves the surviving waiters."""
    async def body():
        flights = SingleFlight()
        finished = asyncio.Event()

        async def thunk():
            await asyncio.sleep(0.05)
            finished.set()
            return "result"

        first = asyncio.ensure_future(flights.run("k", thunk))
        await asyncio.sleep(0.01)
        second = asyncio.ensure_future(flights.run("k", thunk))
        await asyncio.sleep(0.01)
        first.cancel()
        with pytest.raises(asyncio.CancelledError):
            await first
        result, shared = await second
        assert result == "result" and shared
        assert finished.is_set()  # the execution was never cancelled

    asyncio.run(body())


def test_single_flight_failure_fans_out_and_resets():
    async def body():
        flights = SingleFlight()
        calls = []

        async def failing():
            calls.append(1)
            await asyncio.sleep(0.01)
            raise RuntimeError("boom")

        waits = [asyncio.ensure_future(flights.run("k", failing))
                 for _ in range(3)]
        for wait in waits:
            with pytest.raises(RuntimeError, match="boom"):
                await wait
        assert len(calls) == 1      # one execution, shared failure
        # the flight was forgotten: the next request retries fresh
        async def ok():
            return "fine"
        result, shared = await flights.run("k", ok)
        assert result == "fine" and not shared

    asyncio.run(body())


# -- drain controller -------------------------------------------------------

def test_drain_journal_roundtrip(tmp_path):
    async def body():
        drain = DrainController(str(tmp_path))
        assert not drain.is_draining()
        drain.begin()
        drain.begin()  # idempotent
        assert drain.is_draining()
        assert drain.journal({"op": "ping", "key": "a"})
        assert drain.journal({"op": "run", "workload": "relu"})
        drain.close()
        assert drain.journaled == 2

    asyncio.run(body())
    pending = read_pending(tmp_path)
    assert [p["op"] for p in pending] == ["ping", "run"]


def test_drain_journal_without_state_dir_is_nonfatal(tmp_path):
    async def body():
        drain = DrainController(None)
        drain.begin()
        assert drain.journal({"op": "ping"}) is False

    asyncio.run(body())
    assert read_pending(tmp_path / "missing") == []


def test_read_pending_skips_torn_tail(tmp_path):
    path = tmp_path / "pending.jsonl"
    path.write_text(json.dumps({"op": "ping"}) + "\n"
                    + '{"op": "run", "work')  # torn mid-append
    assert read_pending(tmp_path) == [{"op": "ping"}]


# -- protocol ---------------------------------------------------------------

def test_normalize_rejects_bad_requests():
    for body, fragment in [
        ([1, 2], "JSON object"),
        ({"op": "teleport"}, "unknown op"),
        ({"op": "run", "workload": "nope"}, "unknown workload"),
        ({"op": "run", "workload": "relu", "method": "magic"},
         "unknown method"),
        ({"op": "run", "workload": "relu", "gpu": "tpu"}, "unknown gpu"),
        ({"op": "run", "workload": "relu", "size": "big"}, "integer"),
        ({"op": "run", "workload": "relu", "size": 0}, ">= 1"),
        ({"op": "sweep"}, "workloads"),
        ({"op": "sweep", "workloads": ["relu"], "sizes": []},
         "non-empty"),
    ]:
        with pytest.raises(ProtocolError, match=fragment):
            normalize_request(body)


def test_normalize_defaults_and_tenant():
    request = normalize_request({"workload": "relu"}, op="run")
    assert request.op == "run"
    assert request.tenant == "default"
    assert request.size == 4096 and request.method == "photon"
    named = normalize_request({"op": "ping", "tenant": "alice"})
    assert named.tenant == "alice"


def test_protocol_error_is_config_error():
    assert issubclass(ProtocolError, ConfigError)


def test_request_key_is_stable_and_content_addressed():
    """Same (program, data, grid, config) → same key; any simulation-
    shaping change → different key; presentation fields never enter."""
    a = normalize_request({"workload": "relu", "size": 128}, op="run")
    b = normalize_request({"workload": "relu", "size": 128,
                           "tenant": "other", "stream": True}, op="run")
    key_a = request_key(a.task())
    assert key_a == request_key(b.task())      # presentation-free
    assert len(key_a) == 64 and int(key_a, 16) >= 0

    for variant in [{"size": 256}, {"method": "pka"}, {"gpu": "mi100"},
                    {"workload": "fir"}, {"seed": 7}]:
        other = normalize_request(
            {"workload": "relu", "size": 128, **variant}, op="run")
        assert request_key(other.task()) != key_a, variant


def test_deterministic_result_strips_host_variance():
    from repro.parallel.tasks import SweepTask, run_task

    task = SweepTask(index=0, workload="relu", size=128,
                     method="photon", gpu="r9nano")
    outcome = run_task(task)
    result = deterministic_result(outcome)
    for name in ("wall_seconds", "worker", "started", "attempts",
                 "index", "store_payload", "trace_hits"):
        assert name not in result
    assert result["status"] == "ok"
    assert result["sim_time"] == outcome.sim_time

"""Least-squares fitting and the rolling stability detector."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RollingSlope, StabilityDetector, least_squares_fit


def test_exact_fit_recovery():
    xs = [0, 1, 2, 3, 4]
    ys = [2 * x + 5 for x in xs]
    a, b = least_squares_fit(xs, ys)
    assert a == pytest.approx(2.0)
    assert b == pytest.approx(5.0)


def test_fit_requires_two_points():
    with pytest.raises(ValueError):
        least_squares_fit([1], [1])


def test_fit_degenerate_x():
    with pytest.raises(ValueError):
        least_squares_fit([3, 3, 3], [1, 2, 3])


@settings(max_examples=50, deadline=None)
@given(
    a=st.floats(-100, 100),
    b=st.floats(-1000, 1000),
    xs=st.lists(st.integers(0, 100000), min_size=3, max_size=50,
                unique=True),
)
def test_property_fit_recovers_noiseless_line(a, b, xs):
    xs = [float(x) for x in xs]  # well-separated abscissae
    ys = [a * x + b for x in xs]
    fit_a, fit_b = least_squares_fit(xs, ys)
    assert fit_a == pytest.approx(a, abs=1e-4, rel=1e-4)


def test_rolling_slope_matches_batch():
    window = 8
    roll = RollingSlope(window)
    points = [(float(i), 1.5 * i + (i % 3)) for i in range(30)]
    for x, y in points:
        roll.add(x, y)
    a, _ = least_squares_fit([p[0] for p in points[-window:]],
                             [p[1] for p in points[-window:]])
    assert roll.slope() == pytest.approx(a)


def test_rolling_slope_window_eviction():
    roll = RollingSlope(4)
    for i in range(100):
        roll.add(float(i), float(2 * i))
    assert roll.count == 4
    assert roll.full
    assert roll.slope() == pytest.approx(2.0)


def test_rolling_slope_degenerate_returns_none():
    roll = RollingSlope(4)
    for _ in range(4):
        roll.add(5.0, 1.0)
    assert roll.slope() is None


def test_rolling_slope_rejects_tiny_window():
    with pytest.raises(ValueError):
        RollingSlope(1)


def _feed_stable(detector, count, start=0.0, duration=10.0, step=5.0):
    t = start
    for _ in range(count):
        detector.add(t, t + duration)
        t += step


def test_detector_stable_stream():
    det = StabilityDetector(window=8, delta=0.03)
    _feed_stable(det, 16)
    assert det.ready
    assert det.is_stable()
    assert det.mean_duration() == pytest.approx(10.0)


def test_detector_not_ready_before_two_windows():
    det = StabilityDetector(window=8, delta=0.03)
    _feed_stable(det, 15)  # one short of 2n
    assert not det.ready
    assert not det.is_stable()


def test_detector_ready_at_window_without_mean_check():
    det = StabilityDetector(window=8, delta=0.03, mean_check=False)
    _feed_stable(det, 8)
    assert det.ready and det.is_stable()


def test_detector_rejects_warmup_slope():
    """Durations growing with issue time -> slope > 1 -> unstable."""
    det = StabilityDetector(window=8, delta=0.03)
    t = 0.0
    for i in range(16):
        det.add(t, t + 10.0 + 5.0 * i)  # growing latency
        t += 5.0
    assert not det.is_stable()


def test_detector_mean_check_catches_level_shift():
    """Slope ~1 inside each window but means differ -> local optimum."""
    det = StabilityDetector(window=8, delta=0.05)
    _feed_stable(det, 8, start=0.0, duration=10.0)
    _feed_stable(det, 8, start=40.0, duration=20.0)
    # slope within each half is 1, but the means differ by 2x
    assert abs(det.slope() - 1.0) < 1.0  # slope alone is not wildly off
    assert not det.is_stable()


def test_detector_mean_delta_loosens_guard():
    strict = StabilityDetector(window=8, delta=0.03)
    loose = StabilityDetector(window=8, delta=0.03, mean_delta=0.5)
    for det in (strict, loose):
        _feed_stable(det, 8, start=0.0, duration=10.0)
        _feed_stable(det, 8, start=40.0, duration=11.0)  # 10% drift
    assert not strict.is_stable()
    assert loose.is_stable()


def test_detector_mean_duration_requires_data():
    det = StabilityDetector(window=4, delta=0.03)
    with pytest.raises(ValueError):
        det.mean_duration()


def test_detector_recovers_after_instability():
    det = StabilityDetector(window=8, delta=0.03, mean_delta=0.03)
    _feed_stable(det, 8, start=0.0, duration=10.0)
    _feed_stable(det, 8, start=40.0, duration=30.0)  # shift: unstable
    assert not det.is_stable()
    _feed_stable(det, 16, start=100.0, duration=30.0)
    assert det.is_stable()
    assert det.mean_duration() == pytest.approx(30.0)


@settings(max_examples=30, deadline=None)
@given(
    duration=st.floats(1.0, 1e4),
    step=st.floats(0.5, 100.0),
    window=st.integers(2, 64),
)
def test_property_constant_duration_is_stable(duration, step, window):
    det = StabilityDetector(window=window, delta=0.03)
    _feed_stable(det, 2 * window, duration=duration, step=step)
    assert det.is_stable()
    assert det.mean_duration() == pytest.approx(duration)

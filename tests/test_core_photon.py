"""Photon controller integration: modes, fallback, kernel DB, offline
analysis reuse."""

import pytest

from repro.core import AnalysisStore, Photon, PhotonConfig
from repro.functional import Application
from repro.timing import simulate_kernel_detailed

from conftest import make_loop_kernel, make_vecadd


def photon(tiny_gpu, fast_photon_config, **overrides):
    import dataclasses

    config = dataclasses.replace(fast_photon_config, **overrides)
    return Photon(tiny_gpu, config)


def test_small_kernel_falls_back_to_full(tiny_gpu, fast_photon_config):
    """Nothing to sample: every warp fits in one dispatch generation."""
    kernel = make_vecadd(n_warps=4)
    result = photon(tiny_gpu, fast_photon_config).simulate_kernel(kernel)
    assert result.mode == "full"
    assert result.detail_fraction == 1.0
    full = simulate_kernel_detailed(make_vecadd(n_warps=4), tiny_gpu)
    assert result.sim_time == full.sim_time


def test_large_uniform_kernel_switches_and_bounds_error(
        tiny_gpu, fast_photon_config):
    kernel = make_loop_kernel(n_warps=700, trips_of=lambda w: 6)
    result = photon(tiny_gpu, fast_photon_config).simulate_kernel(kernel)
    assert result.mode in ("warp", "bb")
    assert result.detail_fraction < 1.0
    full = simulate_kernel_detailed(
        make_loop_kernel(n_warps=700, trips_of=lambda w: 6), tiny_gpu)
    err = abs(full.sim_time - result.sim_time) / full.sim_time
    assert err < 0.25


def test_warp_sampling_disabled_for_irregular(tiny_gpu, fast_photon_config):
    """No dominant warp type -> warp detector never armed."""
    kernel = make_loop_kernel(n_warps=500, trips_of=lambda w: 1 + w % 7)
    result = photon(tiny_gpu, fast_photon_config,
                    enable_bb_sampling=False,
                    enable_kernel_sampling=False).simulate_kernel(kernel)
    assert result.mode == "full"


def test_levels_can_be_disabled(tiny_gpu, fast_photon_config):
    kernel = make_loop_kernel(n_warps=700, trips_of=lambda w: 6)
    result = photon(
        tiny_gpu, fast_photon_config,
        enable_kernel_sampling=False, enable_warp_sampling=False,
        enable_bb_sampling=False,
    ).simulate_kernel(kernel)
    assert result.mode == "full"


def test_kernel_sampling_on_repeated_launches(tiny_gpu, fast_photon_config):
    """Second identical launch must hit the kernel DB."""
    sim = photon(tiny_gpu, fast_photon_config)
    app = Application("repeat")
    app.launch(make_loop_kernel(n_warps=64, trips_of=lambda w: 5))
    app.launch(make_loop_kernel(n_warps=64, trips_of=lambda w: 5))
    result = sim.simulate_app(app)
    assert result.kernels[0].mode in ("full", "warp", "bb")
    assert result.kernels[1].mode == "kernel"
    assert result.kernels[1].detail_insts == 0
    # prediction inherits the first kernel's behaviour
    assert result.kernels[1].sim_time == pytest.approx(
        result.kernels[0].sim_time, rel=0.05)


def test_kernel_sampling_respects_disable(tiny_gpu, fast_photon_config):
    sim = photon(tiny_gpu, fast_photon_config, enable_kernel_sampling=False)
    app = Application("repeat")
    app.launch(make_vecadd(n_warps=16))
    app.launch(make_vecadd(n_warps=16))
    result = sim.simulate_app(app)
    assert all(k.mode != "kernel" for k in result.kernels)


def test_different_kernels_not_cross_matched(tiny_gpu, fast_photon_config):
    sim = photon(tiny_gpu, fast_photon_config)
    app = Application("mixed")
    app.launch(make_vecadd(n_warps=64))
    app.launch(make_loop_kernel(n_warps=64, trips_of=lambda w: 6))
    result = sim.simulate_app(app)
    assert result.kernels[1].mode != "kernel"


def test_analysis_store_reuse(tiny_gpu, fast_photon_config):
    store = AnalysisStore()
    kernel_factory = lambda: make_vecadd(n_warps=32)
    Photon(tiny_gpu, fast_photon_config,
           analysis_store=store).simulate_kernel(kernel_factory())
    assert store.misses == 1 and store.hits == 0
    Photon(tiny_gpu, fast_photon_config,
           analysis_store=store).simulate_kernel(kernel_factory())
    assert store.hits == 1
    assert len(store) == 1


def test_analysis_store_distinguishes_grids(tiny_gpu, fast_photon_config):
    store = AnalysisStore()
    sim = Photon(tiny_gpu, fast_photon_config, analysis_store=store)
    sim.simulate_kernel(make_vecadd(n_warps=16))
    sim.simulate_kernel(make_vecadd(n_warps=32))
    assert len(store) == 2


def test_result_accounting_consistent(tiny_gpu, fast_photon_config):
    kernel = make_loop_kernel(n_warps=700, trips_of=lambda w: 6)
    result = photon(tiny_gpu, fast_photon_config).simulate_kernel(kernel)
    assert result.n_insts > 0
    assert 0 <= result.detail_insts <= result.n_insts
    assert result.wall_seconds > 0
    assert result.sim_time > 0


def test_app_mode_counts(tiny_gpu, fast_photon_config):
    sim = photon(tiny_gpu, fast_photon_config)
    app = Application("app")
    for _ in range(3):
        app.launch(make_vecadd(n_warps=16))
    result = sim.simulate_app(app)
    counts = result.mode_counts()
    assert sum(counts.values()) == 3
    assert counts.get("kernel", 0) == 2

"""GT-Pin and Sieve inter-kernel baselines."""

import pytest

from repro.baselines import GTPin, Sieve
from repro.errors import ConfigError
from repro.functional import Application
from repro.workloads import build_pagerank

from conftest import make_loop_kernel, make_vecadd


def test_sieve_requires_valid_bucket_ratio(tiny_gpu):
    with pytest.raises(ConfigError):
        Sieve(tiny_gpu, bucket_ratio=1.0)


@pytest.mark.parametrize("cls", [Sieve, GTPin])
def test_first_launch_is_detailed(cls, tiny_gpu):
    result = cls(tiny_gpu).simulate_kernel(make_vecadd(n_warps=8))
    assert result.mode.endswith("-full")
    assert result.detail_insts == result.n_insts


@pytest.mark.parametrize("cls", [Sieve, GTPin])
def test_repeat_launch_is_projected(cls, tiny_gpu):
    sampler = cls(tiny_gpu)
    app = Application("twice")
    app.launch(make_vecadd(n_warps=16))
    app.launch(make_vecadd(n_warps=16))
    result = sampler.simulate_app(app)
    assert result.kernels[1].mode.endswith("-kernel")
    assert result.kernels[1].detail_insts == 0
    assert result.kernels[1].sim_time == pytest.approx(
        result.kernels[0].sim_time)


def test_sieve_projection_scales_with_instruction_count(tiny_gpu):
    """Within one (name, count-bucket) stratum, time scales by insts."""
    sampler = Sieve(tiny_gpu, bucket_ratio=3.0)  # wide buckets
    app = Application("scaled")
    app.launch(make_loop_kernel(n_warps=32, trips_of=lambda w: 6))
    app.launch(make_loop_kernel(n_warps=32, trips_of=lambda w: 7))
    result = sampler.simulate_app(app)
    assert result.kernels[1].mode == "sieve-kernel"
    ratio = result.kernels[1].n_insts / result.kernels[0].n_insts
    assert result.kernels[1].sim_time == pytest.approx(
        result.kernels[0].sim_time * ratio)


def test_sieve_different_buckets_not_merged(tiny_gpu):
    sampler = Sieve(tiny_gpu, bucket_ratio=1.1)  # narrow buckets
    app = Application("spread")
    app.launch(make_loop_kernel(n_warps=32, trips_of=lambda w: 2))
    app.launch(make_loop_kernel(n_warps=32, trips_of=lambda w: 20))
    result = sampler.simulate_app(app)
    assert result.kernels[1].mode == "sieve-full"


def test_gtpin_distinguishes_block_structure(tiny_gpu):
    sampler = GTPin(tiny_gpu)
    app = Application("mixed")
    app.launch(make_vecadd(n_warps=16))
    app.launch(make_loop_kernel(n_warps=16, trips_of=lambda w: 4))
    result = sampler.simulate_app(app)
    # different programs (different names/blocks): both detailed
    assert result.kernels[1].mode == "gtpin-full"


def test_gtpin_blind_to_data_dependent_behaviour(tiny_gpu):
    """The paper's critique of name/static-feature keying: two launches
    with identical static structure but different dynamic trip counts
    are merged — and mispredicted — by GT-Pin-style selection."""
    sampler = GTPin(tiny_gpu)
    app = Application("trap")
    app.launch(make_loop_kernel(n_warps=32, trips_of=lambda w: 2))
    app.launch(make_loop_kernel(n_warps=32, trips_of=lambda w: 40))
    result = sampler.simulate_app(app)
    assert result.kernels[1].mode == "gtpin-kernel"  # wrongly merged
    # projection scales by instruction ratio, but per-warp behaviour
    # differs: prediction deviates from a full run of the same kernel
    from repro.timing import simulate_kernel_detailed

    full = simulate_kernel_detailed(
        make_loop_kernel(n_warps=32, trips_of=lambda w: 40), tiny_gpu)
    assert result.kernels[1].sim_time != pytest.approx(
        full.sim_time, rel=0.02)


def test_pagerank_iterations_skipped(tiny_gpu):
    app = build_pagerank(128, iterations=4)
    result = Sieve(tiny_gpu).simulate_app(app, method_name="sieve")
    modes = [k.mode for k in result.kernels]
    assert modes[0] == "sieve-full"
    assert modes[1:] == ["sieve-kernel"] * 3
    assert result.method == "sieve"

"""DuraSweep resume: crash anywhere, resume, get the identical result.

The invariant (``docs/durability.md``): a journaled sweep interrupted
at any point produces, after ``resume_sweep``, a deterministic
comparison table — and merged trace-store bundles — bitwise-identical
to an uninterrupted run.  Tested here at record granularity (resume
from every journal prefix), against injected torn/ENOSPC writes, and
end-to-end with a real SIGKILLed pool worker; the seeded many-trial
version lives in ``scripts/chaos_sweep.py`` (nightly chaos lane).
"""

import hashlib
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ConfigError, DiskFault
from repro.harness.tables import comparison_table
from repro.parallel import (
    JOURNAL_NAME,
    plan_sweep,
    resume_sweep,
    run_sweep,
    scan_journal,
)
from repro.reliability import FsFaultPlan, FsFaultSpec, scoped_fs_faults

SIZES = (64,)


def _plan(**kwargs):
    return plan_sweep(["fir"], sizes=SIZES, methods=("photon",),
                      seed=7, **kwargs)


def _det(result):
    return comparison_table(result.rows, deterministic=True)


def _store_digest(root: Path):
    return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(Path(root).glob("*.trc"))}


# ------------------------------------------------- basic journaled runs


def test_journaled_run_matches_plain_run(tmp_path):
    golden = run_sweep(_plan())
    journaled = run_sweep(_plan(), run_dir=str(tmp_path / "run"))
    assert _det(journaled) == _det(golden)
    scan = scan_journal(tmp_path / "run" / JOURNAL_NAME)
    assert scan.complete
    assert len(scan.outcomes()) == len(journaled.outcomes)


def test_run_dir_refuses_reuse(tmp_path):
    run_sweep(_plan(), run_dir=str(tmp_path / "run"))
    with pytest.raises(ConfigError, match="resume"):
        run_sweep(_plan(), run_dir=str(tmp_path / "run"))


def test_resume_of_complete_journal_replays_everything(tmp_path):
    golden = run_sweep(_plan(), run_dir=str(tmp_path / "run"))
    resumed = resume_sweep(str(tmp_path / "run"))
    assert _det(resumed) == _det(golden)
    assert resumed.replayed == len(golden.outcomes)
    assert resumed.report.replayed == len(golden.outcomes)
    assert "resume:" in resumed.report.summary()


def test_resume_validates_arguments(tmp_path):
    with pytest.raises(ConfigError, match="jobs"):
        resume_sweep(str(tmp_path), jobs=0)
    with pytest.raises(ConfigError, match="queue_depth"):
        resume_sweep(str(tmp_path), queue_depth=0)


# ------------------------------------- resume from every journal prefix


def test_resume_from_every_record_prefix_is_identical(tmp_path):
    """Record-granular crash sweep: cut the journal after each record.

    Every whole-record prefix that still contains the plan must resume
    to the identical deterministic table — this is the line-level
    version of what the chaos harness proves with real SIGKILLs.
    """
    golden = run_sweep(_plan(), run_dir=str(tmp_path / "golden"))
    golden_table = _det(golden)
    raw = (tmp_path / "golden" / JOURNAL_NAME).read_bytes()
    lines = raw.splitlines(keepends=True)
    assert len(lines) >= 4
    for n in range(1, len(lines) + 1):
        run_dir = tmp_path / f"cut-{n}"
        run_dir.mkdir()
        (run_dir / JOURNAL_NAME).write_bytes(b"".join(lines[:n]))
        resumed = resume_sweep(str(run_dir))
        assert _det(resumed) == golden_table, f"prefix of {n} records"
        # a resumed journal must itself be complete and resumable again
        again = resume_sweep(str(run_dir))
        assert _det(again) == golden_table
        assert again.replayed == len(golden.outcomes)


def test_failed_tasks_rerun_on_resume(tmp_path):
    """A journaled *failed* outcome is retried, not replayed."""
    golden = run_sweep(_plan(), run_dir=str(tmp_path / "golden"))
    raw = (tmp_path / "golden" / JOURNAL_NAME).read_bytes()
    run_dir = tmp_path / "failed"
    run_dir.mkdir()
    # rewrite one done record as a failure of the same task
    from repro.parallel.journal import (
        REC_DONE,
        decode_line,
        encode_record,
    )

    out_lines = []
    flipped = False
    for line in raw.splitlines():
        record = decode_line(line)
        assert record is not None
        if not flipped and record["rec"] == REC_DONE:
            outcome = dict(record["outcome"])
            outcome["status"] = "error"
            outcome["error_class"] = "InjectedFault"
            outcome["error"] = "pretend this task failed pre-crash"
            record = {"rec": "failed", "index": record["index"],
                      "outcome": outcome}
            flipped = True
        out_lines.append(encode_record(
            {k: v for k, v in record.items() if k != "checksum"}))
    assert flipped
    (run_dir / JOURNAL_NAME).write_bytes(b"".join(out_lines))
    resumed = resume_sweep(str(run_dir))
    assert _det(resumed) == _det(golden)
    assert resumed.replayed == len(golden.outcomes) - 1


# ------------------------------------------- injected filesystem crashes


def test_torn_journal_append_crashes_then_resumes(tmp_path):
    golden = run_sweep(_plan())
    run_dir = tmp_path / "run"
    plan = FsFaultPlan(FsFaultSpec(site="sweep.journal", mode="torn",
                                   at=3, fraction=0.4))
    with scoped_fs_faults(plan):
        with pytest.raises(DiskFault):
            run_sweep(_plan(), run_dir=str(run_dir))
    assert plan.fired
    # the journal has a torn tail exactly where the crash happened
    scan = scan_journal(run_dir / JOURNAL_NAME)
    assert scan.quarantined_bytes > 0
    resumed = resume_sweep(str(run_dir))
    assert _det(resumed) == _det(golden)
    assert (run_dir / "journal.quarantined").exists()


def test_enospc_bundle_write_crashes_then_resumes(tmp_path):
    store = tmp_path / "store"
    golden_store = tmp_path / "golden-store"
    golden = run_sweep(_plan(trace_store=str(golden_store)))
    run_dir = tmp_path / "run"
    plan = FsFaultPlan(FsFaultSpec(site="tracestore.bundle",
                                   mode="enospc", at=1))
    with scoped_fs_faults(plan):
        with pytest.raises(OSError):
            run_sweep(_plan(trace_store=str(store)),
                      run_dir=str(run_dir))
    assert plan.fired
    resumed = resume_sweep(str(run_dir))
    assert _det(resumed) == _det(golden)
    assert _store_digest(store) == _store_digest(golden_store)


# --------------------------------------------------- e2e SIGKILL worker


@pytest.mark.slow
def test_sigkilled_worker_then_cli_resume_matches_golden(tmp_path):
    """Full stack: real subprocess, real SIGKILL, CLI --resume."""
    golden = run_sweep(plan_sweep(["fir", "relu"], sizes=SIZES,
                                  methods=("photon",), seed=7))
    golden_table = _det(golden)

    run_dir = tmp_path / "run"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep", "fir", "relu",
         "--sizes", "64", "--methods", "photon", "--seed", "7",
         "--jobs", "2", "--run-dir", str(run_dir)],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    journal = run_dir / JOURNAL_NAME
    try:
        deadline = time.monotonic() + 120
        while proc.poll() is None and time.monotonic() < deadline:
            scan = scan_journal(journal)
            if any(r.get("rec") in ("done", "failed")
                   for r in scan.records):
                children = Path(
                    f"/proc/{proc.pid}/task/{proc.pid}/children"
                ).read_text().split()
                if children:
                    os.kill(int(children[-1]), signal.SIGKILL)
                    break
            time.sleep(0.02)
        proc.wait(timeout=120)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass

    resumed = resume_sweep(str(run_dir))
    assert _det(resumed) == golden_table

"""Unit tests for the SimScope observability layer (``repro.obs``)."""

import io
import json

import pytest

from repro import obs
from repro.obs import (
    ALL_TYPES,
    CORE_KINDS,
    ENGINE_BB,
    ENGINE_KERNEL,
    ENGINE_WARP_RETIRE,
    HOT_KINDS,
    PARALLEL_TASK,
    RELIABILITY_WATCHDOG,
    ChromeTraceSink,
    CountingSink,
    EventBus,
    JsonlSink,
    MemorySink,
    current_bus,
    open_trace,
    scoped_bus,
    set_default_bus,
    sink_for_path,
    to_chrome_trace,
)

# ------------------------------------------------------------ events


def test_event_type_record_and_to_dict():
    event = ENGINE_BB.record(7, (3, 0x40, 10.0, 12.5))
    assert event.kind == "engine.bb"
    assert event.seq == 7
    assert event.fields == {"warp": 3, "pc": 0x40, "t0": 10.0,
                            "t1": 12.5}
    assert event.to_dict() == {"kind": "engine.bb", "seq": 7, "warp": 3,
                               "pc": 0x40, "t0": 10.0, "t1": 12.5}


def test_taxonomy_is_consistent():
    assert set(CORE_KINDS) <= set(ALL_TYPES)
    assert HOT_KINDS <= set(ALL_TYPES)
    # core kinds are exactly the non-hot ones: safe for default accounting
    assert not (set(CORE_KINDS) & HOT_KINDS)
    for name, etype in ALL_TYPES.items():
        assert etype.name == name
        assert etype.fields  # every type carries at least one field


# ------------------------------------------------------------ bus


def test_subscribe_publish_positional_args():
    bus = EventBus()
    seen = []
    bus.subscribe(ENGINE_BB, lambda *args: seen.append(args))
    bus.emit(ENGINE_BB, 1, 0x10, 0.0, 5.0)
    assert seen == [(1, 0x10, 0.0, 5.0)]


def test_emit_without_subscribers_is_a_noop():
    bus = EventBus()
    bus.emit(ENGINE_KERNEL, "k", 0.0, 1.0, 10, False)  # must not raise
    assert not bus.channel(ENGINE_KERNEL).active


def test_delivery_order_is_subscription_order():
    bus = EventBus()
    order = []
    bus.subscribe(ENGINE_BB, lambda *a: order.append("first"))
    bus.subscribe(ENGINE_BB, lambda *a: order.append("second"))
    bus.emit(ENGINE_BB, 0, 0, 0.0, 1.0)
    assert order == ["first", "second"]


def test_unsubscribe_detaches():
    bus = EventBus()
    seen = []
    handle = bus.subscribe(ENGINE_BB, lambda *a: seen.append(a))
    bus.unsubscribe(ENGINE_BB, handle)
    bus.emit(ENGINE_BB, 0, 0, 0.0, 1.0)
    assert seen == []


def test_sink_receives_records_with_monotone_seq():
    bus = EventBus()
    sink = bus.add_sink(MemorySink())
    bus.emit(ENGINE_BB, 1, 0x10, 0.0, 5.0)
    bus.emit(ENGINE_WARP_RETIRE, 1, 0.0, 6.0)
    bus.emit(ENGINE_KERNEL, "k", 0.0, 6.0, 9, False)
    kinds = [e.kind for e in sink.events]
    assert kinds == ["engine.bb", "engine.warp_retire", "engine.kernel"]
    seqs = [e.seq for e in sink.events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_sink_kind_filter():
    bus = EventBus()
    sink = bus.add_sink(MemorySink(), kinds=[ENGINE_KERNEL.name])
    bus.emit(ENGINE_BB, 1, 0x10, 0.0, 5.0)
    bus.emit(ENGINE_KERNEL, "k", 0.0, 6.0, 9, False)
    assert [e.kind for e in sink.events] == ["engine.kernel"]
    # the filtered-out channel never became active
    assert not bus.channel(ENGINE_BB).active


def test_add_sink_rejects_unknown_kind():
    bus = EventBus()
    with pytest.raises(KeyError, match="unknown event kind"):
        bus.add_sink(MemorySink(), kinds=["engine.nonsense"])


def test_remove_sink_detaches_every_subscription():
    bus = EventBus()
    sink = bus.add_sink(MemorySink())
    bus.remove_sink(sink)
    assert bus.sinks == []
    bus.emit(ENGINE_BB, 1, 0x10, 0.0, 5.0)
    assert sink.events == []
    for name in ALL_TYPES:
        assert not bus._channels[name].active


def test_event_counts_merges_counting_sinks():
    bus = EventBus()
    a = bus.add_sink(CountingSink(), kinds=[ENGINE_BB.name])
    b = bus.add_sink(CountingSink(), kinds=[ENGINE_BB.name])
    bus.emit(ENGINE_BB, 1, 0x10, 0.0, 5.0)
    assert a.total == b.total == 1
    assert bus.event_counts() == {"engine.bb": 2}


# ------------------------------------------------------------ default bus


def test_scoped_bus_installs_and_restores():
    outer = current_bus()
    with scoped_bus() as inner:
        assert current_bus() is inner
        assert inner is not outer
    assert current_bus() is outer


def test_set_default_bus_returns_previous():
    outer = current_bus()
    fresh = EventBus()
    assert set_default_bus(fresh) is outer
    try:
        assert current_bus() is fresh
    finally:
        set_default_bus(outer)


# ------------------------------------------------------------ sinks


def test_memory_sink_kinds_and_of_kind():
    bus = EventBus()
    sink = bus.add_sink(MemorySink())
    bus.emit(ENGINE_BB, 1, 0x10, 0.0, 5.0)
    bus.emit(ENGINE_BB, 2, 0x10, 1.0, 6.0)
    bus.emit(ENGINE_KERNEL, "k", 0.0, 6.0, 9, False)
    assert sink.kinds() == {"engine.bb": 2, "engine.kernel": 1}
    assert len(sink.of_kind("engine.bb")) == 2
    assert len(sink) == 3


def test_jsonl_sink_writes_flat_lines():
    buffer = io.StringIO()
    bus = EventBus()
    sink = bus.add_sink(JsonlSink(buffer))
    bus.emit(ENGINE_BB, 1, 0x10, 0.0, 5.0)
    bus.emit(RELIABILITY_WATCHDOG, "engine:k", "events", 100, "budget")
    sink.close()  # non-owned handle stays open
    lines = [json.loads(line) for line in
             buffer.getvalue().splitlines()]
    assert sink.n_written == 2
    assert lines[0]["kind"] == "engine.bb"
    assert lines[0]["pc"] == 0x10
    assert lines[1] == {"kind": "reliability.watchdog", "seq": 2,
                        "label": "engine:k", "unit": "events",
                        "ticks": 100, "reason": "budget"}


def test_jsonl_sink_owns_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    bus = EventBus()
    sink = bus.add_sink(JsonlSink(str(path)))
    bus.emit(ENGINE_KERNEL, "k", 0.0, 6.0, 9, False)
    bus.remove_sink(sink)
    sink.close()
    record = json.loads(path.read_text())
    assert record["kernel"] == "k"


def test_chrome_sink_writes_document_on_close(tmp_path):
    path = tmp_path / "trace.json"
    bus = EventBus()
    sink = bus.add_sink(ChromeTraceSink(str(path)))
    bus.emit(ENGINE_BB, 1, 0x10, 0.0, 5.0)
    sink.close()
    sink.close()  # idempotent
    doc = json.loads(path.read_text())
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["ts"] == 0.0 and spans[0]["dur"] == 5.0


def test_sink_for_path_picks_format(tmp_path):
    assert isinstance(sink_for_path(str(tmp_path / "a.json")),
                      ChromeTraceSink)
    assert isinstance(sink_for_path(str(tmp_path / "a.jsonl")), JsonlSink)


def test_open_trace_attaches_and_narrows(tmp_path):
    bus = EventBus()
    path = tmp_path / "t.jsonl"
    sink = open_trace(bus, str(path), kinds=[ENGINE_KERNEL.name])
    bus.emit(ENGINE_BB, 1, 0x10, 0.0, 5.0)
    bus.emit(ENGINE_KERNEL, "k", 0.0, 6.0, 9, False)
    bus.remove_sink(sink)
    sink.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["kind"] == "engine.kernel"


# ------------------------------------------------------------ metrics


def test_counter_and_snapshot():
    registry = obs.MetricsRegistry()
    registry.counter("runs").inc()
    registry.counter("runs").inc(2)
    registry.counter("insts").inc(100)
    snap = registry.snapshot()
    assert snap["counters"] == {"runs": 3, "insts": 100}


def test_timer_context_manager():
    registry = obs.MetricsRegistry()
    timer = registry.timer("phase")
    with timer:
        pass
    with timer:
        pass
    assert timer.count == 2
    assert timer.total >= 0.0
    assert timer.mean == pytest.approx(timer.total / 2)
    assert "phase" in registry.snapshot()["timers"]


def test_span_nesting_pauses_enclosing_timer():
    """Spans account *exclusive* time: entering a nested span pauses the
    enclosing one, so phase totals sum to wall time without double count."""
    registry = obs.MetricsRegistry()
    with registry.span("a"):
        with registry.span("b"):
            pass
        with registry.span("b"):
            pass
    # 'a' ran in three uninterrupted sections: before, between, after
    assert registry.timer("span.a").count == 3
    assert registry.timer("span.b").count == 2
    phases = registry.phases()
    assert set(phases) == {"a", "b"}
    assert all(total >= 0.0 for total in phases.values())


def test_phases_ignores_plain_timers():
    registry = obs.MetricsRegistry()
    with registry.span("io"):
        pass
    with registry.timer("not_a_phase"):
        pass
    assert set(registry.phases()) == {"io"}


# ------------------------------------------------------------ chrome export


def test_chrome_trace_spans_and_instants():
    events = [
        {"kind": "engine.wg_dispatch", "seq": 1, "wg": 0, "cu": 1,
         "t": 0.0, "n_warps": 4},
        {"kind": "engine.bb", "seq": 2, "warp": 3, "pc": 0x20,
         "t0": 1.0, "t1": 4.0},
        {"kind": "reliability.fallback", "seq": 3, "kernel": "k",
         "from_level": "bb", "to_level": "warp", "error": "Boom"},
        {"kind": "engine.kernel", "seq": 4, "kernel": "k", "t0": 0.0,
         "t1": 9.0, "n_insts": 42, "stopped": False},
    ]
    doc = to_chrome_trace(events)
    records = doc["traceEvents"]
    names = {e["name"] for e in records}
    assert "bb@32" in names and "k" in names
    # the clock-less fallback instant is pinned to the last seen time
    fallback = next(e for e in records if e["name"] == "bb→warp")
    assert fallback["ph"] == "i"
    assert fallback["ts"] == 4.0
    # per-process metadata present for Perfetto grouping
    assert any(e["ph"] == "M" for e in records)


def test_chrome_trace_skips_unknown_kinds():
    doc = to_chrome_trace([{"kind": "future.kind", "seq": 1}])
    assert all(e["ph"] == "M" for e in doc["traceEvents"])


def test_chrome_trace_task_spans_use_wall_microseconds():
    events = [{"kind": "parallel.task", "seq": 1, "index": 0,
               "workload": "relu", "size": 256, "method": "photon",
               "status": "ok", "worker": 41, "t0": 1.5, "t1": 2.5}]
    doc = to_chrome_trace(events)
    span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert span["ts"] == pytest.approx(1.5e6)
    assert span["dur"] == pytest.approx(1.0e6)


def test_chrome_trace_is_json_serializable_and_loadable():
    events = [{"kind": "engine.kernel", "seq": 1, "kernel": "k",
               "t0": 0.0, "t1": 9.0, "n_insts": 42, "stopped": True}]
    payload = json.dumps(to_chrome_trace(events), allow_nan=False)
    assert json.loads(payload)["otherData"]["producer"] == "repro.obs"

"""WarpPack: path-grouped, warp-batched vectorized functional execution.

Covers the batched executor's grouping behaviour, the fallback ladder
(batch -> per-warp on ExecutionError), the process-wide and per-config
batching switches, the ``exec.batch`` observability surface, the
chunked engine provider, and the TraceCache batch-fill accounting.
Bitwise equivalence against the per-warp interpreter is property-tested
in ``test_property_random_programs.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MemoryFault
from repro.functional import (
    FunctionalExecutor,
    GlobalMemory,
    Kernel,
    PackProvider,
    WarpPackExecutor,
    batching_enabled,
    control_traces,
    pack_compatible,
    resolve_trace_provider,
    scoped_batching,
    set_batching_enabled,
)
from repro.isa import KernelBuilder, MemAddr, s, v
from repro.obs import EXEC_BATCH, EXEC_BATCH_FALLBACK, EventBus, scoped_bus
from repro.reliability.faults import FaultPlan
from repro.reliability.watchdog import WatchdogConfig
from repro.timing import DetailedEngine, TraceCache

from conftest import make_vecadd


def make_split_kernel(n_warps: int = 8, threshold: int = 4,
                      wg_size: int = 2) -> Kernel:
    """Warps below ``threshold`` run an extra segment (two path groups)."""
    mem = GlobalMemory(capacity_words=n_warps * 64 + 64)
    out = mem.alloc("out", n_warps * 64)
    b = KernelBuilder("split")
    b.v_lane(v(0))
    b.s_mul(s(3), s(0), 64)
    b.v_add(v(0), v(0), s(3))
    b.v_mov(v(1), 1.0)
    b.s_cmp_lt(s(0), threshold)
    b.s_cbranch_scc0("join")
    b.v_mul(v(1), v(1), 3.0)
    b.v_add(v(1), v(1), v(0))
    b.label("join")
    b.v_store(v(1), MemAddr(base=s(4), index=v(0)))
    b.s_endpgm()
    return Kernel(program=b.build(), n_warps=n_warps, wg_size=wg_size,
                  memory=mem, args=lambda w: {4: out}, name="split")


def make_faulting_kernel(n_warps: int = 6, bad_warp: int = 2,
                         wg_size: int = 2) -> Kernel:
    """One warp branches to an out-of-bounds store; the rest are fine."""
    mem = GlobalMemory(capacity_words=n_warps * 64 + 64)
    out = mem.alloc("out", n_warps * 64)
    b = KernelBuilder("faulty")
    b.v_lane(v(0))
    b.s_mul(s(3), s(0), 64)
    b.v_add(v(0), v(0), s(3))
    b.v_mov(v(1), 1.0)
    b.s_cmp_eq(s(0), bad_warp)
    b.s_cbranch_scc0("safe")
    b.v_store(v(1), MemAddr(base=s(9), index=v(0)))  # s9 is OOB
    b.label("safe")
    b.v_store(v(1), MemAddr(base=s(4), index=v(0)))
    b.s_endpgm()
    oob = mem.capacity * 4
    return Kernel(program=b.build(), n_warps=n_warps, wg_size=wg_size,
                  memory=mem, args=lambda w: {4: out, 9: oob},
                  name="faulty")


# -- path grouping -----------------------------------------------------------


def test_uniform_kernel_is_one_group():
    kernel = make_vecadd(n_warps=8)
    pack = WarpPackExecutor(kernel)
    _traces, groups, fallback = pack.control_packs(range(8))
    assert fallback == []
    assert [sorted(g) for g in groups] == [list(range(8))]


def test_divergent_kernel_splits_groups():
    kernel = make_split_kernel(n_warps=8, threshold=4)
    pack = WarpPackExecutor(kernel)
    traces, groups, fallback = pack.control_packs(range(8))
    assert fallback == []
    assert sorted(sorted(g) for g in groups) == [[0, 1, 2, 3],
                                                 [4, 5, 6, 7]]
    # path signatures really differ between the halves
    assert traces[0].bb_seq != traces[4].bb_seq
    assert len(traces) == 8


def test_fill_full_reports_group_sizes():
    kernel = make_split_kernel(n_warps=8, threshold=2)
    fill = WarpPackExecutor(kernel).fill_full(range(8))
    assert sorted(fill.group_sizes) == [2, 6]
    assert sorted(fill.traces) == list(range(8))
    assert fill.fallback == []


# -- CONTROL-result sharing (Kernel.path_memo) -------------------------------


def test_control_pass_memoizes_path_groups():
    """A CONTROL lockstep pass records each warp's path-group token so a
    later ``fill_full`` starts pre-partitioned instead of re-deriving
    the grouping."""
    kernel = make_split_kernel(n_warps=8, threshold=2)
    pack = WarpPackExecutor(kernel)
    assert kernel.path_memo == {}
    pack.run_warps_control(range(8))
    assert set(kernel.path_memo) == set(range(8))
    # two path groups -> exactly two distinct tokens, partitioned at
    # the divergence threshold
    tokens = {w: kernel.path_memo[w] for w in range(8)}
    assert len(set(tokens.values())) == 2
    assert tokens[0] is tokens[1]
    assert tokens[2] is tokens[7]
    assert tokens[0] is not tokens[2]


def test_fill_full_reuses_memoized_partition():
    kernel = make_split_kernel(n_warps=8, threshold=2)
    with scoped_bus() as bus:
        pack = WarpPackExecutor(kernel)
        pack.run_warps_control(range(8))
        fill = pack.fill_full(range(8))
        reused = bus.metrics.counter("exec.batch.ctrl_reused").value
    assert reused == 8
    assert sorted(fill.group_sizes) == [2, 6]
    assert fill.fallback == []


def test_stale_path_memo_self_heals():
    """A wrong memo entry is only a hint: the merged FULL runner splits
    on the actual branch outcome, so traces stay bitwise correct."""
    kernel = make_split_kernel(n_warps=8, threshold=2)
    pack = WarpPackExecutor(kernel)
    pack.run_warps_control(range(8))
    # lie: pretend every warp shares warp 0's path group
    token = kernel.path_memo[0]
    for w in range(8):
        kernel.path_memo[w] = token
    fill = pack.fill_full(range(8))
    assert fill.fallback == []
    expect = FunctionalExecutor(make_split_kernel(n_warps=8, threshold=2))
    for w in range(8):
        assert fill.traces[w] == expect.run_warp_full(w), f"warp {w}"


def test_full_pass_also_memoizes():
    kernel = make_split_kernel(n_warps=8, threshold=2)
    pack = WarpPackExecutor(kernel)
    pack.fill_full(range(8))
    assert set(kernel.path_memo) == set(range(8))
    assert len(set(kernel.path_memo.values())) == 2


def test_same_path_traces_share_column_objects():
    """Warps of one path group share their static-column list objects —
    the timing engine's per-trace pool cache is keyed on ``id()`` of
    those lists, so sharing keeps the pool hit rate at one build per
    group instead of one per warp."""
    kernel = make_split_kernel(n_warps=8, threshold=2)
    traces = WarpPackExecutor(kernel).run_warps_full(range(8))
    assert traces[2].opclass is traces[7].opclass
    assert traces[2].dep is traces[7].dep
    assert traces[0].opclass is traces[1].opclass
    assert traces[0].opclass is not traces[2].opclass
    # per-warp rows stay private
    assert traces[2].mem_lines is not traces[7].mem_lines


# -- fallback ladder ---------------------------------------------------------


def test_faulting_group_falls_back_without_losing_good_warps():
    kernel = make_faulting_kernel(n_warps=6, bad_warp=2)
    fill = WarpPackExecutor(kernel).fill_full(range(6))
    assert fill.fallback == [2]
    assert sorted(fill.traces) == [0, 1, 3, 4, 5]


def test_provider_serves_good_warps_and_raises_for_bad():
    kernel = make_faulting_kernel(n_warps=6, bad_warp=2)
    provider = PackProvider(kernel)
    for warp in (0, 1, 3, 4, 5):
        assert provider(warp).n_insts > 0
    with pytest.raises(MemoryFault):
        provider(2)


def test_fallback_trace_matches_per_warp():
    kernel_a = make_faulting_kernel(n_warps=6, bad_warp=2)
    kernel_b = make_faulting_kernel(n_warps=6, bad_warp=2)
    fill = WarpPackExecutor(kernel_a).fill_full(range(6))
    reference = FunctionalExecutor(kernel_b)
    for warp in (0, 1, 3, 4, 5):
        assert fill.traces[warp] == reference.run_warp_full(warp)


# -- batching switches -------------------------------------------------------


def test_scoped_batching_flag():
    assert batching_enabled()
    with scoped_batching(False):
        assert not batching_enabled()
        with scoped_batching(True):
            assert batching_enabled()
        assert not batching_enabled()
    assert batching_enabled()


def test_resolve_trace_provider_honors_flag():
    kernel = make_vecadd(n_warps=4)
    assert isinstance(resolve_trace_provider(kernel), PackProvider)
    with scoped_batching(False):
        assert not isinstance(resolve_trace_provider(kernel), PackProvider)


def test_pack_compatible_gates():
    assert pack_compatible(None, None)
    assert pack_compatible(WatchdogConfig(deadline_seconds=10.0), None)
    assert not pack_compatible(WatchdogConfig(max_instructions=100), None)
    assert not pack_compatible(WatchdogConfig(stall_instructions=50), None)
    assert not pack_compatible(None, FaultPlan())


def test_control_traces_batched_equals_per_warp():
    kernel = make_split_kernel(n_warps=8)
    batched = control_traces(kernel, range(8))
    with scoped_batching(False):
        per_warp = control_traces(kernel, range(8))
    assert batched == per_warp


def test_engine_results_identical_with_batching_off(tiny_gpu):
    first = DetailedEngine(make_vecadd(n_warps=8), tiny_gpu).run()
    with scoped_batching(False):
        second = DetailedEngine(make_vecadd(n_warps=8), tiny_gpu).run()
    assert first.end_time == second.end_time
    assert first.warp_times == second.warp_times
    assert first.mem_stats == second.mem_stats


def test_cli_no_batch_flag():
    from repro.cli import main

    try:
        assert main(["run", "relu", "--size", "64", "--no-batch"]) == 0
        assert not batching_enabled()
    finally:
        set_batching_enabled(True)


# -- observability -----------------------------------------------------------


def test_exec_batch_events_and_counters():
    with scoped_bus() as bus:
        seen = []
        bus.subscribe(
            EXEC_BATCH,
            lambda kernel, mode, warps, groups, sizes, fallbacks, wall:
            seen.append((kernel, mode, warps, groups, sizes, fallbacks)))
        kernel = make_split_kernel(n_warps=8, threshold=4)
        WarpPackExecutor(kernel, bus=bus).fill_full(range(8))
        assert seen == [("split", "full", 8, 2, [4, 4], 0)]
        counters = bus.metrics.snapshot()["counters"]
        assert counters["exec.batch.groups"] == 2
        assert counters["exec.batch.batched_warps"] == 8
        assert "exec.batch.fallbacks" not in counters


def test_exec_batch_fallback_event():
    with scoped_bus() as bus:
        seen = []
        bus.subscribe(EXEC_BATCH_FALLBACK,
                      lambda kernel, mode, warps: seen.append(warps))
        kernel = make_faulting_kernel(n_warps=6, bad_warp=1)
        WarpPackExecutor(kernel, bus=bus).fill_full(range(6))
        assert seen == [[1]]
        counters = bus.metrics.snapshot()["counters"]
        assert counters["exec.batch.fallbacks"] == 1


# -- chunked provider and TraceCache integration -----------------------------


def test_pack_provider_chunks_fills():
    with scoped_bus() as bus:
        fills = []
        bus.subscribe(
            EXEC_BATCH,
            lambda kernel, mode, warps, groups, sizes, fallbacks, wall:
            fills.append(warps))
        kernel = make_vecadd(n_warps=8)
        provider = PackProvider(kernel, chunk=4)
        for warp in range(8):
            assert provider(warp).warp_id == warp
        assert fills == [4, 4]  # two chunk fills, no per-warp runs


def test_trace_cache_batch_fill_counts_served_misses_only(tiny_gpu):
    """Speculatively filled but never-requested warps are not misses."""
    cache = TraceCache()
    kernel = make_vecadd(n_warps=8)
    provider = cache.provider(kernel)
    provider(3)  # fills the whole chunk, serves one warp
    assert cache.misses == 1 and cache.hits == 0
    provider(5)  # served from the same fill: a miss, not a hit
    assert cache.misses == 2 and cache.hits == 0
    provider(3)  # genuinely cached now
    assert cache.hits == 1


def test_trace_cache_per_warp_when_batching_off(tiny_gpu):
    with scoped_batching(False):
        cache = TraceCache()
        kernel = make_vecadd(n_warps=8)
        DetailedEngine(kernel, tiny_gpu,
                       trace_provider=cache.provider(kernel)).run()
        assert cache.misses == 8 and cache.hits == 0


# -- END-row shape regression (per-warp and batched agree) -------------------


def test_end_row_shape_pinned():
    """``s_endpgm`` appends a full trace row then stops.

    The END handler writes a dependency entry with ``mem_lines`` None
    and ``is_store`` False, and breaks *before* the last-writer update —
    the batched interpreter replicates this exactly, so the final row is
    part of the bitwise contract.
    """
    kernel = make_vecadd(n_warps=4)
    program = kernel.program
    end_idx = len(program.instructions) - 1
    per_warp = FunctionalExecutor(make_vecadd(n_warps=4)).run_warp_full(1)
    batched = WarpPackExecutor(kernel).run_warps_full(range(4))[1]
    for trace in (per_warp, batched):
        assert trace.static_idx[-1] == end_idx
        assert trace.mem_lines[-1] is None
        assert trace.is_store[-1] is False
        assert -1 <= trace.dep[-1] < trace.n_insts - 1
        # parallel arrays all cover the END row
        assert (len(trace.opclass) == len(trace.opcode) == len(trace.dep)
                == len(trace.mem_lines) == len(trace.is_store)
                == trace.n_insts)
    assert per_warp == batched

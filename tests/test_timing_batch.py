"""Differential property suite for TimePack (the batched timing core).

Batched timing is purely a performance optimisation: the SoA lockstep
engine in ``timing/batch.py`` must be *bitwise* indistinguishable from
the scalar event loop.  Hypothesis generates random programs across the
shapes that exercise every engine mechanism — warp-divergent branches,
workgroup barriers, LDS round trips under partial exec masks, counted
loops, and global-memory traffic — and each example runs the same
launch twice (batched on / off, each on its own :class:`EventBus`) and
compares:

* end-to-end simulated cycles and per-warp dispatch/retire times;
* the **full materialised event sequence** across every engine channel
  (kind, per-bus sequence number, and all fields);
* ``request_stop`` snapshots — stop time, resident-warp retire times,
  undispatched warps, and CU slot-release times;
* optional accounting surfaces (``ipc_series``, ``latency_table``,
  ``mem_stats``).

The quick lanes run in the fast CI job; the ``slow``-marked lanes rerun
the same properties at 200 examples in the nightly job.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import R9_NANO
from repro.functional import GlobalMemory, Kernel
from repro.isa import KernelBuilder, MemAddr, s, v
from repro.obs import ENGINE_BB, EventBus, MemorySink
from repro.reliability.watchdog import WatchdogConfig
from repro.timing import (
    DetailedEngine,
    EngineListener,
    scoped_timing_batching,
    set_timing_batching,
    timing_batching_enabled,
    timing_pack_compatible,
)

GPU = R9_NANO.scaled(4)

_VOPS = ("v_add", "v_sub", "v_mul", "v_max", "v_min", "v_xor")
_SOPS = ("s_add", "s_sub", "s_mul", "s_min", "s_max")


@st.composite
def timing_kernel_factories(draw):
    """A zero-arg factory building a random timing-shaped kernel.

    Compared to the functional property generator this one leans on the
    mechanisms the *engine* cares about: barriers (workgroup
    synchronisation), waitcnt joins, LDS latency, divergent path groups
    of different lengths, and enough warps to cause CU contention.
    """
    n_warps = draw(st.integers(1, 16))
    wg_size = draw(st.sampled_from([1, 2, 4]))
    n_loops = draw(st.integers(0, 2))

    b = KernelBuilder("timing_random")
    b.v_lane(v(0))
    b.s_mul(s(3), s(0), 64)
    b.v_add(v(0), v(0), s(3))
    b.v_mov(v(1), 0.0)
    b.s_mov(s(5), 1)

    def emit_ops(ops):
        for name, operand in ops:
            if name.startswith("v_"):
                getattr(b, name)(v(1), v(1), float(operand))
            else:
                getattr(b, name)(s(5), s(5), operand)

    emit_ops(draw(st.lists(
        st.tuples(st.sampled_from(_VOPS + _SOPS), st.integers(1, 7)),
        min_size=1, max_size=6)))

    # barrier on the common path: every warp of a workgroup must arrive
    if draw(st.booleans()):
        b.s_barrier()

    # warp-divergent scalar branch (s0 = warp id) -> path groups of
    # different dynamic lengths, which is what desynchronises the
    # lockstep rounds and forces partial-retire handling
    if draw(st.booleans()):
        threshold = draw(st.integers(0, 15))
        extra = draw(st.lists(
            st.tuples(st.sampled_from(_VOPS + _SOPS), st.integers(1, 7)),
            min_size=1, max_size=5))
        b.s_cmp_lt(s(0), threshold)
        b.s_cbranch_scc0("skip_warp_div")
        emit_ops(extra)
        if draw(st.booleans()):
            b.v_load(v(2), MemAddr(base=s(4), index=v(0)))
            b.s_waitcnt()
        b.label("skip_warp_div")
        # optional barrier after reconvergence: warps arrive at
        # different times, so barrier release ordering is exercised
        if wg_size > 1 and draw(st.booleans()):
            b.s_barrier()

    # lane divergence with an LDS round trip under a partial exec mask
    if draw(st.booleans()):
        b.v_lane(v(3))
        b.v_cmp_lt(v(3), float(draw(st.integers(1, 63))))
        b.s_exec_from_vcc()
        emit_ops(draw(st.lists(
            st.tuples(st.sampled_from(_VOPS), st.integers(1, 7)),
            min_size=1, max_size=3)))
        if draw(st.booleans()):
            b.ds_write(v(3), v(1))
            b.s_waitcnt()
            b.ds_read(v(2), v(3))
            b.s_waitcnt()
        b.s_exec_all()
        b.v_cndmask(v(1), v(1), v(2))

    for loop_idx in range(n_loops):
        trips = draw(st.integers(1, 4))
        counter = s(8 + loop_idx)
        b.s_mov(counter, 0)
        b.label(f"loop{loop_idx}")
        emit_ops(draw(st.lists(
            st.tuples(st.sampled_from(_VOPS + _SOPS), st.integers(1, 7)),
            min_size=1, max_size=4)))
        if draw(st.booleans()):
            b.v_load(v(2), MemAddr(base=s(4), index=v(0)))
            b.s_waitcnt()
        b.s_add(counter, counter, 1)
        b.s_cmp_lt(counter, trips)
        b.s_cbranch_scc1(f"loop{loop_idx}")

    if draw(st.booleans()):
        b.v_store(v(1), MemAddr(base=s(4), index=v(0)))
    b.s_endpgm()
    program = b.build()

    def factory():
        mem = GlobalMemory(capacity_words=n_warps * 64 + 256)
        buf = mem.alloc("buf", np.ones(n_warps * 64))
        return Kernel(program=program, n_warps=n_warps, wg_size=wg_size,
                      memory=mem, args=lambda w: {4: buf},
                      name="timing_random")

    return factory


# -- the differential harness ------------------------------------------------


def _run_once(factory, batched, stop_after_bbs=None, **engine_kwargs):
    """One engine run on a private bus; returns (result, event dicts)."""
    kernel = factory()
    bus = EventBus()
    sink = bus.add_sink(MemorySink())
    engine = DetailedEngine(kernel, GPU, bus=bus, **engine_kwargs)
    if stop_after_bbs is not None:
        seen = [0]

        def on_bb(warp, pc, t0, t1):
            seen[0] += 1
            if seen[0] == stop_after_bbs:
                engine.request_stop()

        bus.subscribe(ENGINE_BB, on_bb)
    with scoped_timing_batching(batched):
        result = engine.run()
    return result, [e.to_dict() for e in sink.events]


def _assert_results_identical(ref, got):
    assert got.end_time == ref.end_time
    assert got.n_insts == ref.n_insts
    assert got.warp_times == ref.warp_times
    assert got.stopped == ref.stopped
    assert got.stop_time == ref.stop_time
    assert got.undispatched == ref.undispatched
    assert got.cu_slot_free == ref.cu_slot_free
    assert got.mem_stats == ref.mem_stats
    assert got.ipc_series == ref.ipc_series
    assert got.latency_table == ref.latency_table


def _differential(factory, stop_after_bbs=None, **engine_kwargs):
    ref, ref_events = _run_once(factory, batched=False,
                                stop_after_bbs=stop_after_bbs,
                                **engine_kwargs)
    got, got_events = _run_once(factory, batched=True,
                                stop_after_bbs=stop_after_bbs,
                                **engine_kwargs)
    _assert_results_identical(ref, got)
    assert got_events == ref_events


@settings(max_examples=40, deadline=None)
@given(timing_kernel_factories())
def test_timing_batched_equivalence_quick(factory):
    """Fast-lane slice: batched vs scalar, full event-sequence compare."""
    _differential(factory)


@pytest.mark.slow
@settings(max_examples=200, deadline=None)
@given(timing_kernel_factories())
def test_timing_batched_equivalence_full(factory):
    """Full 200-example batched-vs-scalar run (nightly lane)."""
    _differential(factory)


@settings(max_examples=20, deadline=None)
@given(timing_kernel_factories(), st.integers(1, 30))
def test_timing_batched_stop_snapshot_quick(factory, stop_after):
    """``request_stop`` mid-run from an event callback: the snapshot
    (stop time, resident retires, undispatched, slot frees) is bitwise
    identical between the batched and scalar engines."""
    _differential(factory, stop_after_bbs=stop_after)


@pytest.mark.slow
@settings(max_examples=200, deadline=None)
@given(timing_kernel_factories(), st.integers(1, 60))
def test_timing_batched_stop_snapshot_full(factory, stop_after):
    _differential(factory, stop_after_bbs=stop_after)


@settings(max_examples=10, deadline=None)
@given(timing_kernel_factories())
def test_timing_batched_accounting_surfaces(factory):
    """ipc_series buckets and the opcode latency table match exactly."""
    _differential(factory, ipc_bucket=25.0, collect_latency=True)


# -- attach-order regression pin --------------------------------------------


class _Recorder(EngineListener):
    """Records every callback into a shared journal, tagged by name."""

    def __init__(self, tag, journal):
        self.tag = tag
        self.journal = journal

    def on_warp_dispatched(self, warp_id, t):
        self.journal.append((self.tag, "dispatch", warp_id, t))

    def on_bb_complete(self, warp_id, pc, t0, t1):
        self.journal.append((self.tag, "bb", warp_id, pc, t0, t1))

    def on_warp_retired(self, warp_id, dispatch, retire):
        self.journal.append((self.tag, "retire", warp_id, dispatch, retire))


def _listener_journal(batched):
    kernel_factory = _attach_order_kernel()
    journal = []
    engine = DetailedEngine(kernel_factory(), GPU, bus=EventBus())
    # attach order is part of the observable contract: listener "a"
    # must see every event before listener "b" does
    engine.attach(_Recorder("a", journal))
    engine.attach(_Recorder("b", journal))
    with scoped_timing_batching(batched):
        engine.run()
    return journal


def _attach_order_kernel():
    b = KernelBuilder("attach_order")
    b.v_lane(v(0))
    b.s_mul(s(3), s(0), 64)
    b.v_add(v(0), v(0), s(3))
    b.v_mov(v(1), 2.0)
    b.s_cmp_lt(s(0), 3)
    b.s_cbranch_scc0("skip")
    b.v_mul(v(1), v(1), 3.0)
    b.label("skip")
    b.s_barrier()
    b.v_add(v(1), v(1), 1.0)
    b.s_endpgm()
    program = b.build()

    def factory():
        mem = GlobalMemory(capacity_words=1024)
        return Kernel(program=program, n_warps=6, wg_size=2, memory=mem,
                      args=lambda w: {}, name="attach_order")

    return factory


def test_attach_order_pinned_across_engines():
    """Two listeners attached a-then-b observe the identical interleaved
    callback journal whether the run is batched or scalar."""
    scalar = _listener_journal(batched=False)
    batched = _listener_journal(batched=True)
    assert scalar, "journal must not be empty"
    assert batched == scalar
    # and within any single event, "a" fires before "b"
    for i in range(0, len(batched) - 1, 1):
        tag, *rest = batched[i]
        if tag == "a" and i + 1 < len(batched):
            nxt_tag, *nxt_rest = batched[i + 1]
            if nxt_rest == rest:
                assert nxt_tag == "b"


# -- pack-compatibility ladder and flag plumbing -----------------------------


def test_ladder_accepts_default_engine():
    engine = DetailedEngine(_attach_order_kernel()(), GPU, bus=EventBus())
    ok, reason = timing_pack_compatible(engine)
    assert ok and reason == ""


def test_ladder_rejects_watchdog():
    engine = DetailedEngine(_attach_order_kernel()(), GPU, bus=EventBus(),
                            watchdog=WatchdogConfig(max_events=10**9))
    ok, reason = timing_pack_compatible(engine)
    assert not ok and reason == "watchdog"


def test_ladder_rejects_fractional_start_time():
    engine = DetailedEngine(_attach_order_kernel()(), GPU, bus=EventBus(),
                            start_time=0.5)
    ok, reason = timing_pack_compatible(engine)
    assert not ok and reason == "fractional_start_time"


def test_ladder_rejects_fractional_latency():
    config = dataclasses.replace(GPU, vector_alu_lat=1.5)
    engine = DetailedEngine(_attach_order_kernel()(), config,
                            bus=EventBus())
    ok, reason = timing_pack_compatible(engine)
    assert not ok and reason == "fractional_latency"


def test_fallback_run_is_still_bitwise_identical():
    """An incompatible engine (fractional start) falls back to the
    scalar loop under batching — results match batching-off exactly."""
    factory = _attach_order_kernel()
    _differential(factory, start_time=0.5)


def test_scoped_timing_batching_restores_flag():
    assert timing_batching_enabled()
    with scoped_timing_batching(False):
        assert not timing_batching_enabled()
        with scoped_timing_batching(True):
            assert timing_batching_enabled()
        assert not timing_batching_enabled()
    assert timing_batching_enabled()


def test_set_timing_batching_round_trip():
    try:
        set_timing_batching(False)
        assert not timing_batching_enabled()
    finally:
        set_timing_batching(True)
    assert timing_batching_enabled()
